//! Tabulated device delay factor vs. effective voltage.
//!
//! The stand-in for re-running transistor-level simulation at every
//! voltage: the alpha-power factor is sampled on a fine grid once per
//! (corner, temperature) and interpolated linearly afterwards — the same
//! tabulate-then-look-up structure the paper uses for its HSPICE data.

use crate::condition::EnvCondition;
use razorbus_process::DeviceModel;
use razorbus_units::Volts;

/// Sampling step of the factor table (2 mV).
const STEP_MV: f64 = 2.0;
/// Lowest sampled effective voltage (mV).
const LO_MV: f64 = 300.0;
/// Highest sampled effective voltage (mV).
const HI_MV: f64 = 1_400.0;

/// A sampled `f(V_eff)` device-factor curve with linear interpolation.
///
/// ```
/// use razorbus_process::{DeviceModel, ProcessCorner};
/// use razorbus_tables::{DeviceFactorTable, EnvCondition};
/// use razorbus_units::{Celsius, Volts};
///
/// let dev = DeviceModel::l130_default();
/// let cond = EnvCondition::new(ProcessCorner::Typical, Celsius::HOT);
/// let table = DeviceFactorTable::build(&dev, cond);
/// let exact = dev.delay_factor(Volts::new(0.987), cond.corner, cond.temperature);
/// let interp = table.factor(Volts::new(0.987));
/// assert!((exact - interp).abs() / exact < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceFactorTable {
    condition: EnvCondition,
    samples: Vec<f64>,
}

impl DeviceFactorTable {
    /// Samples `device`'s delay factor for `condition` over
    /// 300 mV – 1.4 V in 2 mV steps.
    #[must_use]
    pub fn build(device: &DeviceModel, condition: EnvCondition) -> Self {
        let n = ((HI_MV - LO_MV) / STEP_MV) as usize + 1;
        let samples = (0..n)
            .map(|i| {
                let v = Volts::new((LO_MV + i as f64 * STEP_MV) / 1_000.0);
                device.delay_factor(v, condition.corner, condition.temperature)
            })
            .collect();
        Self { condition, samples }
    }

    /// The condition this table was built for.
    #[must_use]
    pub fn condition(&self) -> EnvCondition {
        self.condition
    }

    /// Interpolated delay factor at `v_eff`. Clamps to the table range;
    /// returns `f64::INFINITY` wherever either bracketing sample is
    /// non-functional.
    #[must_use]
    pub fn factor(&self, v_eff: Volts) -> f64 {
        let mv = v_eff.volts() * 1_000.0;
        let pos = ((mv - LO_MV) / STEP_MV).clamp(0.0, (self.samples.len() - 1) as f64);
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= self.samples.len() {
            return self.samples[i];
        }
        let (a, b) = (self.samples[i], self.samples[i + 1]);
        if !a.is_finite() || !b.is_finite() {
            // Below functional overdrive for part of the bracket: be
            // conservative and report non-functional.
            return f64::INFINITY;
        }
        a + (b - a) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use razorbus_process::ProcessCorner;
    use razorbus_units::Celsius;

    fn table() -> DeviceFactorTable {
        DeviceFactorTable::build(
            &DeviceModel::l130_default(),
            EnvCondition::new(ProcessCorner::Slow, Celsius::HOT),
        )
    }

    #[test]
    fn interpolation_tracks_exact_model() {
        let dev = DeviceModel::l130_default();
        let cond = EnvCondition::new(ProcessCorner::Slow, Celsius::HOT);
        let t = table();
        for mv in (700..=1_250).step_by(13) {
            let v = Volts::new(f64::from(mv) / 1_000.0);
            let exact = dev.delay_factor(v, cond.corner, cond.temperature);
            let interp = t.factor(v);
            assert!(
                (exact - interp).abs() / exact < 5e-4,
                "at {mv} mV: exact {exact} vs interp {interp}"
            );
        }
    }

    #[test]
    fn non_functional_region_is_infinite() {
        let t = table();
        assert!(t.factor(Volts::new(0.35)).is_infinite());
    }

    #[test]
    fn clamps_above_range() {
        let t = table();
        let top = t.factor(Volts::new(1.4));
        assert!((t.factor(Volts::new(2.0)) - top).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_over_functional_range() {
        let t = table();
        let mut last = f64::INFINITY;
        for mv in (600..=1_400).step_by(2) {
            let f = t.factor(Volts::new(f64::from(mv) / 1_000.0));
            assert!(f <= last + 1e-12);
            last = f;
        }
    }
}
