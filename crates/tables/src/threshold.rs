//! Pass-limit threshold matrix: per (supply grid point, activity bucket),
//! the largest Miller-weighted wire load (fF/mm) that still meets the main
//! flip-flop setup budget.
//!
//! A cycle produces a timing error iff its worst wire's effective
//! capacitance exceeds the pass limit at the current supply point and
//! activity bucket — a single `f64` comparison, which is what lets the
//! simulator replay tens of millions of cycles per second across a
//! voltage sweep (the role the per-pattern HSPICE tables play in §3).

use razorbus_units::{Millivolts, VoltageGrid};

/// Number of activity buckets: toggles are divided by
/// [`ThresholdMatrix::TOGGLES_PER_BUCKET`].
pub(crate) const N_BUCKETS: usize = 9;

/// Pass-limit table for one (condition, static-IR) pair.
///
/// Built by [`crate::BusTables::build`]; query with
/// [`ThresholdMatrix::pass_limit`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ThresholdMatrix {
    grid: VoltageGrid,
    n_bits: usize,
    /// `limits[v_idx * N_BUCKETS + bucket]` in fF/mm; negative means
    /// "every toggling wire fails".
    limits: Vec<f64>,
}

/// Validating deserialization: the limit table must have exactly
/// `grid.len() * N_BUCKETS` entries (the invariant the crate-internal
/// constructor asserts) and a non-zero bus width — corrupt table-cache
/// artifacts error instead of panicking later in
/// [`ThresholdMatrix::pass_limit_at`].
impl<'de> serde::Deserialize<'de> for ThresholdMatrix {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr {
            grid: VoltageGrid,
            n_bits: usize,
            limits: Vec<f64>,
        }
        use serde::de::Error;
        let Repr {
            grid,
            n_bits,
            limits,
        } = Repr::deserialize(deserializer)?;
        if n_bits == 0 {
            return Err(D::Error::custom("threshold matrix for a zero-width bus"));
        }
        if limits.len() != grid.len() * N_BUCKETS {
            return Err(D::Error::custom(format!(
                "threshold matrix shape mismatch: {} limits for {} grid points x {N_BUCKETS} \
                 buckets",
                limits.len(),
                grid.len()
            )));
        }
        Ok(Self {
            grid,
            n_bits,
            limits,
        })
    }
}

impl ThresholdMatrix {
    /// Bus wires per activity bucket (32-bit bus → 9 buckets).
    pub const TOGGLES_PER_BUCKET: u32 = 4;

    pub(crate) fn from_limits(grid: VoltageGrid, n_bits: usize, limits: Vec<f64>) -> Self {
        assert_eq!(limits.len(), grid.len() * N_BUCKETS, "limit table shape");
        Self {
            grid,
            n_bits,
            limits,
        }
    }

    /// The supply grid this matrix is indexed by.
    #[must_use]
    pub fn grid(&self) -> VoltageGrid {
        self.grid
    }

    /// Activity bucket for a toggle count.
    #[inline]
    #[must_use]
    pub fn bucket_of(&self, toggled_wires: u32) -> usize {
        ((toggled_wires / Self::TOGGLES_PER_BUCKET) as usize).min(N_BUCKETS - 1)
    }

    /// Representative switching-activity fraction of `bucket` (its lower
    /// edge; droop underestimation is bounded by one bucket's width).
    #[must_use]
    pub fn bucket_activity(&self, bucket: usize) -> f64 {
        ((bucket as u32 * Self::TOGGLES_PER_BUCKET) as f64 / self.n_bits as f64).min(1.0)
    }

    /// Pass limit (fF/mm) at supply `v` for a cycle toggling
    /// `toggled_wires` wires. A cycle errors iff its worst-wire effective
    /// capacitance exceeds this.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not on the grid.
    #[inline]
    #[must_use]
    pub fn pass_limit(&self, v: Millivolts, toggled_wires: u32) -> f64 {
        let vi = self
            .grid
            .index_of(v)
            .unwrap_or_else(|| panic!("voltage {v} not on table grid"));
        self.limits[vi * N_BUCKETS + self.bucket_of(toggled_wires)]
    }

    /// Pass limit by raw grid index and bucket (hot-loop form).
    #[inline]
    #[must_use]
    pub fn pass_limit_at(&self, v_idx: usize, bucket: usize) -> f64 {
        self.limits[v_idx * N_BUCKETS + bucket]
    }

    /// Row of pass limits (all buckets) at a grid index — used by the
    /// sweep engine to evaluate a whole histogram at once.
    #[must_use]
    pub fn row(&self, v_idx: usize) -> &[f64] {
        &self.limits[v_idx * N_BUCKETS..(v_idx + 1) * N_BUCKETS]
    }

    /// Number of activity buckets.
    #[must_use]
    pub fn n_buckets(&self) -> usize {
        N_BUCKETS
    }

    /// Validates physical monotonicity: limits never decrease with
    /// voltage and never increase with activity. Returns a description of
    /// the first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` on the first monotonicity violation.
    pub fn validate(&self) -> Result<(), String> {
        for b in 0..N_BUCKETS {
            for vi in 1..self.grid.len() {
                let lo = self.pass_limit_at(vi - 1, b);
                let hi = self.pass_limit_at(vi, b);
                if hi + 1e-9 < lo {
                    return Err(format!(
                        "pass limit fell with voltage at bucket {b}, grid index {vi}: {lo} -> {hi}"
                    ));
                }
            }
        }
        for vi in 0..self.grid.len() {
            for b in 1..N_BUCKETS {
                let calm = self.pass_limit_at(vi, b - 1);
                let busy = self.pass_limit_at(vi, b);
                if busy > calm + 1e-9 {
                    return Err(format!(
                        "pass limit rose with activity at grid index {vi}, bucket {b}: {calm} -> {busy}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ThresholdMatrix {
        let grid = VoltageGrid::new(
            Millivolts::new(1_000),
            Millivolts::new(1_040),
            Millivolts::new(20),
        );
        // 3 grid points x 9 buckets, decreasing with activity, increasing
        // with voltage.
        let mut limits = Vec::new();
        for vi in 0..3 {
            for b in 0..N_BUCKETS {
                limits.push(200.0 + 50.0 * vi as f64 - 5.0 * b as f64);
            }
        }
        ThresholdMatrix::from_limits(grid, 32, limits)
    }

    #[test]
    fn bucket_mapping() {
        let m = matrix();
        assert_eq!(m.bucket_of(0), 0);
        assert_eq!(m.bucket_of(3), 0);
        assert_eq!(m.bucket_of(4), 1);
        assert_eq!(m.bucket_of(32), 8);
        assert!((m.bucket_activity(8) - 1.0).abs() < 1e-12);
        assert_eq!(m.bucket_activity(0), 0.0);
    }

    #[test]
    fn lookup_matches_layout() {
        let m = matrix();
        assert_eq!(m.pass_limit(Millivolts::new(1_000), 0), 200.0);
        assert_eq!(m.pass_limit(Millivolts::new(1_040), 32), 300.0 - 40.0);
        assert_eq!(m.pass_limit_at(1, 2), m.row(1)[2]);
    }

    #[test]
    fn validate_accepts_monotone() {
        assert!(matrix().validate().is_ok());
    }

    #[test]
    fn validate_rejects_voltage_inversion() {
        let grid = VoltageGrid::new(
            Millivolts::new(1_000),
            Millivolts::new(1_020),
            Millivolts::new(20),
        );
        let mut limits = vec![100.0; 2 * N_BUCKETS];
        limits[N_BUCKETS] = 50.0; // higher V, lower limit in bucket 0
        let m = ThresholdMatrix::from_limits(grid, 32, limits);
        let err = m.validate().unwrap_err();
        assert!(err.contains("fell with voltage"), "{err}");
    }

    #[test]
    #[should_panic(expected = "not on table grid")]
    fn off_grid_lookup_panics() {
        let _ = matrix().pass_limit(Millivolts::new(1_010), 0);
    }
}
