//! SPICE-style look-up tables for the razorbus DVS bus.
//!
//! §3 of the paper: "In order to reduce the simulation complexity, while
//! maintaining SPICE-level accuracy, the delays (for every wire) and
//! energy consumption on the bus are tabulated for all possible data input
//! combinations using HSPICE. Such look-up tables are created for
//! individual supply voltages (in increments of 20 mV) … and also for
//! different combinations of process corner and temperature. Leakage
//! current through the repeaters is also tabulated…"
//!
//! This crate reproduces exactly that indexing structure on top of the
//! analytical models in `razorbus-wire`/`razorbus-process`:
//!
//! * [`EnvCondition`] — the (process corner, temperature) table key.
//! * [`DeviceFactorTable`] — sampled device delay factor vs. effective
//!   voltage with linear interpolation (the tabulated stand-in for a
//!   transistor-level sweep).
//! * [`ThresholdMatrix`] — per (supply grid point, activity/droop bucket):
//!   the largest Miller-weighted wire load that still meets the main
//!   flip-flop's setup budget. One comparison per cycle decides "timing
//!   error or not", which is what makes the multi-million-cycle sweeps of
//!   §4–§5 cheap.
//! * [`EnergyTable`] — per supply grid point: leakage energy per cycle
//!   (per condition) and the quadratic dynamic-energy scale.
//! * [`BusTables`] — everything bundled per bus design.
//!
//! # Example
//!
//! ```
//! use razorbus_process::PvtCorner;
//! use razorbus_tables::{BusTables, EnvCondition};
//! use razorbus_units::{Millivolts, Picoseconds, VoltageGrid};
//! use razorbus_wire::BusPhysical;
//!
//! let bus = BusPhysical::paper_default();
//! let tables = BusTables::build(&bus, VoltageGrid::paper_default(), Picoseconds::new(220.0));
//! // At nominal supply and the typical corner, even the worst pattern passes.
//! let matrix = tables.threshold_matrix(
//!     EnvCondition::from_pvt(PvtCorner::TYPICAL),
//!     PvtCorner::TYPICAL.ir,
//! );
//! let limit = matrix.pass_limit(Millivolts::new(1_200), 32);
//! assert!(limit > bus.worst_effective_cap_per_mm().ff());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod condition;
mod energy;
mod factor;
mod tables;
mod threshold;

pub use condition::EnvCondition;
pub use energy::EnergyTable;
pub use factor::DeviceFactorTable;
pub use tables::BusTables;
pub use threshold::ThresholdMatrix;
