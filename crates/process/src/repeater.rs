//! Sized repeater (inverter) model.
//!
//! A repeater of width `w` (in minimum-inverter units) presents a drive
//! resistance `R0 / w` scaled by the device delay factor, an input
//! capacitance `w · Cin0`, an output (self-loading) parasitic `w · Cpar0`,
//! and leaks in proportion to `w`.

use crate::corner::ProcessCorner;
use crate::device::DeviceModel;
use crate::leakage::LeakageModel;
use razorbus_units::{Celsius, Femtofarads, Femtojoules, Ohms, Picoseconds, Volts};

/// A repeater (driver/buffer) of a given width.
///
/// ```
/// use razorbus_process::{ProcessCorner, Repeater};
/// use razorbus_units::{Celsius, Volts};
/// let rep = Repeater::l130(40.0);
/// let r_nom = rep.drive_resistance(Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
/// let r_low = rep.drive_resistance(Volts::new(0.9), ProcessCorner::Typical, Celsius::ROOM);
/// assert!(r_low > r_nom);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Repeater {
    width: f64,
    r0: f64,
    cin0: f64,
    cpar0: f64,
    device: DeviceModel,
    leakage: LeakageModel,
}

impl Repeater {
    /// Creates a repeater with explicit unit-device parameters.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `r0`, `cin0` or `cpar0` is not strictly positive.
    #[must_use]
    pub fn new(
        width: f64,
        r0: Ohms,
        cin0: Femtofarads,
        cpar0: Femtofarads,
        device: DeviceModel,
        leakage: LeakageModel,
    ) -> Self {
        assert!(width > 0.0, "repeater width must be positive");
        assert!(r0.ohms() > 0.0, "unit drive resistance must be positive");
        assert!(
            cin0.ff() > 0.0 && cpar0.ff() > 0.0,
            "unit capacitances must be positive"
        );
        Self {
            width,
            r0: r0.ohms(),
            cin0: cin0.ff(),
            cpar0: cpar0.ff(),
            device,
            leakage,
        }
    }

    /// A 0.13 µm repeater of the given width with the crate's default
    /// unit-inverter parameters (R0 = 6 kΩ, Cin0 = 1.5 fF, Cpar0 = 1.2 fF).
    #[must_use]
    pub fn l130(width: f64) -> Self {
        Self::new(
            width,
            Ohms::new(6_000.0),
            Femtofarads::new(1.5),
            Femtofarads::new(1.2),
            DeviceModel::l130_default(),
            LeakageModel::l130_default(),
        )
    }

    /// Returns a copy with a different width (used by the auto-sizer).
    #[must_use]
    pub fn with_width(&self, width: f64) -> Self {
        assert!(width > 0.0, "repeater width must be positive");
        Self { width, ..*self }
    }

    /// Repeater width in unit-inverter widths.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The device model this repeater scales with.
    #[must_use]
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Effective drive resistance at `(v, corner, t)`.
    ///
    /// Returns an infinite resistance when the device is below its
    /// functional overdrive (the delay factor is infinite there).
    #[must_use]
    pub fn drive_resistance(&self, v: Volts, corner: ProcessCorner, t: Celsius) -> Ohms {
        Ohms::new(self.r0 / self.width * self.device.delay_factor(v, corner, t))
    }

    /// Input (gate) capacitance presented to the previous stage.
    #[must_use]
    pub fn input_capacitance(&self) -> Femtofarads {
        Femtofarads::new(self.cin0 * self.width)
    }

    /// Output self-loading (diffusion) parasitic capacitance.
    #[must_use]
    pub fn parasitic_capacitance(&self) -> Femtofarads {
        Femtofarads::new(self.cpar0 * self.width)
    }

    /// Dynamic energy of switching this repeater's own capacitances once
    /// at supply `v` (input + parasitic; the wire load is accounted
    /// separately).
    #[must_use]
    pub fn switching_energy(&self, v: Volts) -> Femtojoules {
        (self.input_capacitance() + self.parasitic_capacitance()) * v * v
    }

    /// Leakage energy over one clock period.
    #[must_use]
    pub fn leakage_energy_per_cycle(
        &self,
        v: Volts,
        corner: ProcessCorner,
        t: Celsius,
        period: Picoseconds,
    ) -> Femtojoules {
        self.leakage
            .energy_per_cycle(self.width, v, corner, t, period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_scales_inversely_with_width() {
        let small = Repeater::l130(10.0);
        let big = Repeater::l130(40.0);
        let v = Volts::new(1.2);
        let rs = small.drive_resistance(v, ProcessCorner::Typical, Celsius::ROOM);
        let rb = big.drive_resistance(v, ProcessCorner::Typical, Celsius::ROOM);
        assert!((rs.ohms() / rb.ohms() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capacitances_scale_with_width() {
        let rep = Repeater::l130(20.0);
        assert!((rep.input_capacitance().ff() - 30.0).abs() < 1e-12);
        assert!((rep.parasitic_capacitance().ff() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_resistance_matches_r0_over_width() {
        let rep = Repeater::l130(30.0);
        let r = rep.drive_resistance(Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
        assert!((r.ohms() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn switching_energy_quadratic() {
        let rep = Repeater::l130(10.0);
        let e1 = rep.switching_energy(Volts::new(0.6));
        let e2 = rep.switching_energy(Volts::new(1.2));
        assert!((e2.fj() / e1.fj() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn with_width_preserves_models() {
        let rep = Repeater::l130(10.0).with_width(25.0);
        assert_eq!(rep.width(), 25.0);
        assert!((rep.input_capacitance().ff() - 37.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        let _ = Repeater::l130(0.0);
    }
}
