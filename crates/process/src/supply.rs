//! Supply-network models: static IR-drop corners and activity-dependent
//! droop at repeater banks.
//!
//! The paper treats IR drop as a corner ("either no IR drop is assumed or
//! a 10 % droop in supply voltage", §4) *and* motivates the whole approach
//! by noting that real IR drop at bus repeaters is strongly
//! vector-dependent (§1). [`IrDrop`] models the former; [`DroopModel`] the
//! latter (the instantaneous droop grows with the number of bus wires
//! switching simultaneously through the shared supply rail).

use razorbus_units::Volts;

/// Static IR-drop corner assumed when computing delays.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub enum IrDrop {
    /// No static supply drop.
    #[default]
    None,
    /// The paper's 10 % worst-case allocation.
    TenPercent,
}

impl IrDrop {
    /// Both corners, in increasing severity.
    pub const ALL: [Self; 2] = [Self::None, Self::TenPercent];

    /// Fraction of the supply lost to static IR drop.
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            Self::None => 0.0,
            Self::TenPercent => 0.10,
        }
    }

    /// Short name used in reports.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::None => "no IR drop",
            Self::TenPercent => "10% IR drop",
        }
    }
}

impl core::fmt::Display for IrDrop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Activity-dependent (vector-dependent) supply droop at repeater banks.
///
/// When many of the bus's repeaters draw current in the same cycle the
/// local rail sags; the droop seen by the *victim* wire scales with the
/// fraction of wires switching. This is the effect that makes a
/// replica-path or triple-latch monitor pessimistic on buses (§1) and that
/// the in-situ Razor detection handles for free.
///
/// ```
/// use razorbus_process::DroopModel;
/// let droop = DroopModel::l130_default();
/// assert_eq!(droop.droop_fraction(0.0), 0.0);
/// assert!(droop.droop_fraction(1.0) <= droop.max_fraction());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DroopModel {
    /// Droop fraction when the whole bus switches at once.
    max_fraction: f64,
}

impl DroopModel {
    /// Creates a droop model with the given full-bus droop fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `max_fraction` lies in `[0, 0.2]` (a droop beyond
    /// 20 % would indicate a broken power grid, not a modeling corner).
    #[must_use]
    pub fn new(max_fraction: f64) -> Self {
        assert!(
            (0.0..=0.2).contains(&max_fraction),
            "droop fraction out of range: {max_fraction}"
        );
        Self { max_fraction }
    }

    /// No dynamic droop (pure static-IR behaviour, as in the paper's own
    /// look-up tables).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0.0)
    }

    /// Default: up to 2.5 % droop with the whole bus switching — small
    /// next to the 10 % static corner but enough to differentiate
    /// program switching activity.
    #[must_use]
    pub fn l130_default() -> Self {
        Self::new(0.025)
    }

    /// Full-bus droop fraction.
    #[must_use]
    pub fn max_fraction(self) -> f64 {
        self.max_fraction
    }

    /// Droop fraction for a given switching-activity fraction in `[0, 1]`
    /// (slightly super-linear: simultaneous switching compounds through
    /// the shared rail inductance/resistance).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    #[must_use]
    pub fn droop_fraction(self, activity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity fraction out of range: {activity}"
        );
        self.max_fraction * activity.powf(1.25)
    }
}

impl Default for DroopModel {
    fn default() -> Self {
        Self::l130_default()
    }
}

/// A complete supply condition: regulator set-point plus static IR corner
/// plus instantaneous droop, yielding the effective voltage the devices
/// see.
///
/// ```
/// use razorbus_process::{DroopModel, IrDrop, SupplyCondition};
/// use razorbus_units::Volts;
/// let cond = SupplyCondition::new(IrDrop::TenPercent, DroopModel::disabled());
/// let v_eff = cond.effective_voltage(Volts::new(1.2), 0.0);
/// assert!((v_eff.volts() - 1.08).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SupplyCondition {
    ir: IrDrop,
    droop: DroopModel,
}

impl SupplyCondition {
    /// Creates a supply condition.
    #[must_use]
    pub fn new(ir: IrDrop, droop: DroopModel) -> Self {
        Self { ir, droop }
    }

    /// The static IR corner.
    #[must_use]
    pub fn ir(self) -> IrDrop {
        self.ir
    }

    /// The droop model.
    #[must_use]
    pub fn droop(self) -> DroopModel {
        self.droop
    }

    /// Effective voltage at the repeaters for a regulator set-point `v`
    /// and a bus switching-activity fraction `activity`.
    #[must_use]
    pub fn effective_voltage(self, v: Volts, activity: f64) -> Volts {
        let keep = 1.0 - self.ir.fraction() - self.droop.droop_fraction(activity);
        v * keep.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_ir_fractions() {
        assert_eq!(IrDrop::None.fraction(), 0.0);
        assert_eq!(IrDrop::TenPercent.fraction(), 0.10);
        assert_eq!(IrDrop::TenPercent.to_string(), "10% IR drop");
    }

    #[test]
    fn droop_monotone_in_activity() {
        let d = DroopModel::l130_default();
        let mut last = -1.0;
        for i in 0..=10 {
            let a = f64::from(i) / 10.0;
            let f = d.droop_fraction(a);
            assert!(f >= last);
            last = f;
        }
        assert!((d.droop_fraction(1.0) - d.max_fraction()).abs() < 1e-12);
    }

    #[test]
    fn effective_voltage_combines_both() {
        let cond = SupplyCondition::new(IrDrop::TenPercent, DroopModel::new(0.02));
        let v = cond.effective_voltage(Volts::new(1.0), 1.0);
        assert!((v.volts() - 0.88).abs() < 1e-12);
    }

    #[test]
    fn disabled_droop_is_zero_everywhere() {
        let d = DroopModel::disabled();
        assert_eq!(d.droop_fraction(0.5), 0.0);
        assert_eq!(d.droop_fraction(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "activity fraction out of range")]
    fn rejects_bad_activity() {
        let _ = DroopModel::l130_default().droop_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "droop fraction out of range")]
    fn rejects_bad_droop() {
        let _ = DroopModel::new(0.5);
    }
}
