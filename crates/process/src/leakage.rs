//! Subthreshold leakage model.
//!
//! §3 of the paper: "Leakage current through the repeaters is also
//! tabulated for the different supply voltages and environment conditions
//! so as to include the contribution of leakage energy to the total bus
//! energy." This model provides the same quantity analytically:
//!
//! ```text
//! I_leak = I0 · W · corner_mult · exp((-Vth + dibl·V) / (n · kT/q))
//! ```
//!
//! which yields the expected exponential growth with temperature and the
//! DIBL-driven super-linear growth with supply voltage.

use crate::corner::ProcessCorner;
use crate::device::DeviceModel;
use razorbus_units::{Celsius, Femtojoules, Picoseconds, Volts};

/// Subthreshold + DIBL leakage model for repeaters.
///
/// `i0_ua_per_unit` is calibrated (not physical): it sets the leakage of a
/// unit-width repeater at the *reference point* (typical corner, 25 °C,
/// nominal V); everything else scales exponentially from there.
///
/// ```
/// use razorbus_process::{LeakageModel, ProcessCorner};
/// use razorbus_units::{Celsius, Volts};
/// let leak = LeakageModel::l130_default();
/// let cold = leak.current_ua(1.0, Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
/// let hot = leak.current_ua(1.0, Volts::new(1.2), ProcessCorner::Typical, Celsius::HOT);
/// assert!(hot > 3.0 * cold); // leakage explodes with temperature
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeakageModel {
    /// Unit-width leakage at the reference point, in µA.
    i0_ua_per_unit: f64,
    /// DIBL coefficient (V of Vth reduction per V of VDS).
    dibl: f64,
    /// Subthreshold ideality factor.
    ideality: f64,
    device: DeviceModel,
}

impl LeakageModel {
    /// Creates a leakage model tied to `device` (for Vth(corner, T)).
    ///
    /// # Panics
    ///
    /// Panics if `i0_ua_per_unit` is negative or `ideality` is not ≥ 1.
    #[must_use]
    pub fn new(i0_ua_per_unit: f64, dibl: f64, ideality: f64, device: DeviceModel) -> Self {
        assert!(i0_ua_per_unit >= 0.0, "leakage scale must be non-negative");
        assert!(ideality >= 1.0, "subthreshold ideality must be >= 1");
        Self {
            i0_ua_per_unit,
            dibl,
            ideality,
            device,
        }
    }

    /// Default 0.13 µm leakage: calibrated so that total repeater leakage
    /// of the paper's bus is a few percent of its dynamic energy at
    /// (typical, 100 °C, 1.2 V) — consistent with a 2005-era process.
    #[must_use]
    pub fn l130_default() -> Self {
        Self::new(0.012, 0.10, 1.4, DeviceModel::l130_default())
    }

    /// Leakage current in µA of a repeater of width `width` (in unit
    /// inverter widths) at supply `v`, `corner`, temperature `t`.
    #[must_use]
    pub fn current_ua(&self, width: f64, v: Volts, corner: ProcessCorner, t: Celsius) -> f64 {
        assert!(width >= 0.0, "width must be non-negative");
        let vt = t.thermal_voltage();
        let vth = self.device.vth(corner, t).volts();
        let vth_ref = self
            .device
            .vth(ProcessCorner::Typical, Celsius::new(DeviceModel::T_REF_C))
            .volts();
        let v_ref = self.device.v_nominal().volts();
        let vt_ref = Celsius::new(DeviceModel::T_REF_C).thermal_voltage();
        let exponent = (-vth + self.dibl * v.volts()) / (self.ideality * vt);
        let exponent_ref = (-vth_ref + self.dibl * v_ref) / (self.ideality * vt_ref);
        self.i0_ua_per_unit * width * corner.leakage_multiplier() * (exponent - exponent_ref).exp()
    }

    /// Leakage *energy* drawn in one clock cycle of period `period` by a
    /// repeater of width `width` held at supply `v`.
    #[must_use]
    pub fn energy_per_cycle(
        &self,
        width: f64,
        v: Volts,
        corner: ProcessCorner,
        t: Celsius,
        period: Picoseconds,
    ) -> Femtojoules {
        // P = V * I: volts * microamps = microwatts; uW * ps = fJ / 1000.
        let microwatts = v.volts() * self.current_ua(width, v, corner, t);
        Femtojoules::new(microwatts * period.ps() / 1_000.0)
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self::l130_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak() -> LeakageModel {
        LeakageModel::l130_default()
    }

    #[test]
    fn reference_point_is_i0() {
        let i = leak().current_ua(1.0, Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
        assert!((i - 0.012).abs() < 1e-12);
    }

    #[test]
    fn scales_linearly_with_width() {
        let l = leak();
        let i1 = l.current_ua(1.0, Volts::new(1.0), ProcessCorner::Typical, Celsius::HOT);
        let i40 = l.current_ua(40.0, Volts::new(1.0), ProcessCorner::Typical, Celsius::HOT);
        assert!((i40 / i1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn grows_with_voltage_via_dibl() {
        let l = leak();
        let lo = l.current_ua(1.0, Volts::new(0.8), ProcessCorner::Typical, Celsius::HOT);
        let hi = l.current_ua(1.0, Volts::new(1.2), ProcessCorner::Typical, Celsius::HOT);
        assert!(hi > lo);
    }

    #[test]
    fn fast_corner_leaks_most() {
        let l = leak();
        let v = Volts::new(1.2);
        let t = Celsius::HOT;
        let s = l.current_ua(1.0, v, ProcessCorner::Slow, t);
        let f = l.current_ua(1.0, v, ProcessCorner::Fast, t);
        assert!(f > 5.0 * s, "fast {f} should dwarf slow {s}");
    }

    #[test]
    fn energy_per_cycle_matches_power_product() {
        let l = leak();
        let period = Picoseconds::new(666.7);
        let e = l.energy_per_cycle(
            10.0,
            Volts::new(1.2),
            ProcessCorner::Typical,
            Celsius::HOT,
            period,
        );
        let i = l.current_ua(10.0, Volts::new(1.2), ProcessCorner::Typical, Celsius::HOT);
        let expect = 1.2 * i * period.ps() / 1_000.0;
        assert!((e.fj() - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "width must be non-negative")]
    fn rejects_negative_width() {
        let _ = leak().current_ua(-1.0, Volts::new(1.0), ProcessCorner::Typical, Celsius::HOT);
    }
}
