//! Process corners: global die-to-die variation buckets.

/// A global process corner.
///
/// The paper's §4 evaluates slow, typical and fast process corners. A
/// corner shifts the device threshold voltage, drive strength (channel
/// resistance) and leakage together, and mildly perturbs wire resistance
/// (metal thickness variation).
///
/// ```
/// use razorbus_process::ProcessCorner;
/// assert!(ProcessCorner::Slow.drive_resistance_multiplier()
///     > ProcessCorner::Fast.drive_resistance_multiplier());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ProcessCorner {
    /// Slow-slow corner: high Vth, weak drive, low leakage.
    Slow,
    /// Typical-typical corner: the normalization anchor.
    Typical,
    /// Fast-fast corner: low Vth, strong drive, high leakage.
    Fast,
}

impl ProcessCorner {
    /// All corners, slow to fast.
    pub const ALL: [Self; 3] = [Self::Slow, Self::Typical, Self::Fast];

    /// Threshold-voltage offset of this corner relative to typical, in
    /// volts (at the reference temperature).
    #[must_use]
    pub fn vth_offset(self) -> f64 {
        match self {
            Self::Slow => 0.035,
            Self::Typical => 0.0,
            Self::Fast => -0.035,
        }
    }

    /// Multiplier on device channel/drive resistance (mobility and
    /// geometry variation beyond the Vth shift).
    #[must_use]
    pub fn drive_resistance_multiplier(self) -> f64 {
        match self {
            Self::Slow => 1.07,
            Self::Typical => 1.0,
            Self::Fast => 0.93,
        }
    }

    /// Multiplier on wire resistance (metal thickness/etch variation).
    /// Interconnect varies less than devices.
    #[must_use]
    pub fn wire_resistance_multiplier(self) -> f64 {
        match self {
            Self::Slow => 1.02,
            Self::Typical => 1.0,
            Self::Fast => 0.98,
        }
    }

    /// Multiplier on subthreshold leakage current (beyond the exponential
    /// Vth dependence captured by the leakage model itself).
    #[must_use]
    pub fn leakage_multiplier(self) -> f64 {
        match self {
            Self::Slow => 0.6,
            Self::Typical => 1.0,
            Self::Fast => 1.8,
        }
    }

    /// Short lowercase name used in reports ("slow"/"typ"/"fast").
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Slow => "slow",
            Self::Typical => "typ",
            Self::Fast => "fast",
        }
    }
}

impl core::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::Slow => "Slow process",
            Self::Typical => "Typical process",
            Self::Fast => "Fast process",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_ordering_is_physical() {
        // Slow: highest Vth, highest R, lowest leakage.
        assert!(ProcessCorner::Slow.vth_offset() > ProcessCorner::Fast.vth_offset());
        assert!(
            ProcessCorner::Slow.drive_resistance_multiplier()
                > ProcessCorner::Typical.drive_resistance_multiplier()
        );
        assert!(
            ProcessCorner::Fast.leakage_multiplier() > ProcessCorner::Slow.leakage_multiplier()
        );
    }

    #[test]
    fn typical_is_identity() {
        let t = ProcessCorner::Typical;
        assert_eq!(t.vth_offset(), 0.0);
        assert_eq!(t.drive_resistance_multiplier(), 1.0);
        assert_eq!(t.wire_resistance_multiplier(), 1.0);
        assert_eq!(t.leakage_multiplier(), 1.0);
    }

    #[test]
    fn display_and_short_names() {
        assert_eq!(ProcessCorner::Slow.to_string(), "Slow process");
        assert_eq!(ProcessCorner::Typical.short_name(), "typ");
        assert_eq!(ProcessCorner::ALL.len(), 3);
    }
}
