//! PVT corners: the (process, voltage-drop, temperature) combinations the
//! paper evaluates.

use crate::corner::ProcessCorner;
use crate::supply::IrDrop;
use razorbus_units::Celsius;

/// A combined process/temperature/static-IR corner.
///
/// §4 of the paper sweeps all combinations of {slow, typical, fast} ×
/// {25 °C, 100 °C} × {no IR, 10 % IR}; Figs. 5/10 plot the five named
/// corners exposed here as constants.
///
/// ```
/// use razorbus_process::PvtCorner;
/// assert_eq!(PvtCorner::FIG5.len(), 5);
/// assert_eq!(PvtCorner::WORST.to_string(), "Slow process, 100 C, 10% IR drop");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PvtCorner {
    /// Global process corner.
    pub process: ProcessCorner,
    /// Operating temperature.
    pub temperature: Celsius,
    /// Static IR-drop assumption.
    pub ir: IrDrop,
}

impl PvtCorner {
    /// Creates a PVT corner.
    #[must_use]
    pub const fn new(process: ProcessCorner, temperature: Celsius, ir: IrDrop) -> Self {
        Self {
            process,
            temperature,
            ir,
        }
    }

    /// The design (sizing) corner: slow process, 100 °C, 10 % IR drop —
    /// the bus must make 600 ps here at 1.2 V.
    pub const WORST: Self = Self::new(ProcessCorner::Slow, Celsius::HOT, IrDrop::TenPercent);

    /// Corner 2 of Fig. 5: slow process, 100 °C, no IR drop.
    pub const SLOW_HOT: Self = Self::new(ProcessCorner::Slow, Celsius::HOT, IrDrop::None);

    /// The paper's "more typical" corner: typical process, 100 °C, no IR.
    pub const TYPICAL: Self = Self::new(ProcessCorner::Typical, Celsius::HOT, IrDrop::None);

    /// Corner 4 of Fig. 5: fast process, 100 °C, no IR drop.
    pub const FAST_HOT: Self = Self::new(ProcessCorner::Fast, Celsius::HOT, IrDrop::None);

    /// The best corner of Fig. 5: fast process, 25 °C, no IR drop.
    pub const BEST: Self = Self::new(ProcessCorner::Fast, Celsius::ROOM, IrDrop::None);

    /// The five corners of Fig. 5/Fig. 10, in the paper's numbering
    /// (1 = worst … 5 = best).
    pub const FIG5: [Self; 5] = [
        Self::WORST,
        Self::SLOW_HOT,
        Self::TYPICAL,
        Self::FAST_HOT,
        Self::BEST,
    ];

    /// Every combination of process × {25, 100} °C × IR corner (12 total).
    #[must_use]
    pub fn all_combinations() -> Vec<Self> {
        let mut out = Vec::with_capacity(12);
        for process in ProcessCorner::ALL {
            for temperature in [Celsius::ROOM, Celsius::HOT] {
                for ir in IrDrop::ALL {
                    out.push(Self::new(process, temperature, ir));
                }
            }
        }
        out
    }

    /// The conservative tuning corner the paper's controller uses for the
    /// regulator's minimum voltage: same *process* (which "does not change
    /// with time", §5) but worst-case temperature and IR drop.
    #[must_use]
    pub fn tuning_corner(self) -> Self {
        Self::new(self.process, Celsius::HOT, IrDrop::TenPercent)
    }
}

impl core::fmt::Display for PvtCorner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}, {:.0}, {}",
            self.process,
            razorbus_units::Celsius::new(self.temperature.celsius()),
            self.ir
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_corner_identities() {
        assert_eq!(PvtCorner::FIG5[0], PvtCorner::WORST);
        assert_eq!(PvtCorner::FIG5[2], PvtCorner::TYPICAL);
        assert_eq!(PvtCorner::FIG5[4], PvtCorner::BEST);
    }

    #[test]
    fn all_combinations_are_unique_and_complete() {
        let all = PvtCorner::all_combinations();
        assert_eq!(all.len(), 12);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(a != b, "duplicate corner {a}");
            }
        }
    }

    #[test]
    fn tuning_corner_pins_temp_and_ir() {
        let tuned = PvtCorner::TYPICAL.tuning_corner();
        assert_eq!(tuned.process, ProcessCorner::Typical);
        assert_eq!(tuned.temperature.celsius(), 100.0);
        assert_eq!(tuned.ir, IrDrop::TenPercent);
        // Worst corner tunes to itself.
        assert_eq!(PvtCorner::WORST.tuning_corner(), PvtCorner::WORST);
    }

    #[test]
    fn display_matches_paper_phrasing() {
        assert_eq!(
            PvtCorner::TYPICAL.to_string(),
            "Typical process, 100 C, no IR drop"
        );
    }
}
