//! Alpha-power-law device delay model.
//!
//! The simulator never needs absolute transistor currents — only how gate
//! delay *scales* with effective supply voltage, temperature and corner
//! relative to the nominal design point. The classic alpha-power law
//! (Sakurai–Newton) captures exactly that:
//!
//! ```text
//! t_gate ∝ (V / (V - Vth)^alpha) · mobility(T) · corner_R
//! ```
//!
//! with `Vth` shifting by corner and temperature, and carrier mobility
//! degrading as `(T/T0)^1.5`. The model is normalized so the factor is
//! exactly 1.0 at (1.2 V, typical corner, 25 °C); all absolute delays come
//! from the RC network in `razorbus-wire` scaled by this factor.

use crate::corner::ProcessCorner;
use razorbus_units::{Celsius, Volts};

/// Alpha-power-law delay-factor model for one technology generation.
///
/// Construct with [`DeviceModel::l130_default`] for the paper's 0.13 µm
/// process, or with [`DeviceModel::new`] for the scaled nodes of the §6
/// technology study.
///
/// ```
/// use razorbus_process::{DeviceModel, ProcessCorner};
/// use razorbus_units::{Celsius, Volts};
/// let dev = DeviceModel::l130_default();
/// let slow = dev.delay_factor(Volts::new(1.08), ProcessCorner::Slow, Celsius::HOT);
/// let fast = dev.delay_factor(Volts::new(1.2), ProcessCorner::Fast, Celsius::ROOM);
/// assert!(slow > 1.2 && fast < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceModel {
    /// Velocity-saturation index (≈2 long-channel, ≈1.2–1.6 short-channel).
    alpha: f64,
    /// Typical-corner threshold voltage at the reference temperature (V).
    vth_typical: f64,
    /// Threshold-voltage temperature coefficient (V/K, negative).
    dvth_dt: f64,
    /// Mobility temperature exponent (delay ∝ (T/T0)^exponent).
    mobility_exponent: f64,
    /// Nominal supply used as the normalization anchor (V).
    v_nominal: f64,
    /// Reference temperature for normalization.
    t_reference: f64,
    /// Precomputed raw factor at the normalization point.
    norm: f64,
}

impl DeviceModel {
    /// Reference temperature (°C) at which `vth_typical` is specified.
    pub const T_REF_C: f64 = 25.0;

    /// Creates a device model.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-physical: `alpha` outside `(1, 2.5]`,
    /// `vth_typical` outside `(0, v_nominal)`, or non-positive nominal
    /// voltage.
    #[must_use]
    pub fn new(
        alpha: f64,
        vth_typical: f64,
        dvth_dt: f64,
        mobility_exponent: f64,
        v_nominal: f64,
    ) -> Self {
        assert!(alpha > 1.0 && alpha <= 2.5, "alpha out of range: {alpha}");
        assert!(v_nominal > 0.0, "nominal voltage must be positive");
        assert!(
            vth_typical > 0.0 && vth_typical < v_nominal,
            "vth must lie in (0, v_nominal)"
        );
        let mut model = Self {
            alpha,
            vth_typical,
            dvth_dt,
            mobility_exponent,
            v_nominal,
            t_reference: Self::T_REF_C,
            norm: 1.0,
        };
        model.norm = model.raw_factor(
            Volts::new(v_nominal),
            ProcessCorner::Typical,
            Celsius::new(Self::T_REF_C),
        );
        model
    }

    /// The paper's 0.13 µm process: 1.2 V nominal, Vth ≈ 0.35 V,
    /// alpha = 2.1 (calibrated so zero-error static scaling at the typical
    /// corner reaches ≈ 980 mV as in Fig. 4b).
    #[must_use]
    pub fn l130_default() -> Self {
        Self::new(1.9, 0.35, -2.7e-4, 0.55, 1.2)
    }

    /// Velocity-saturation index.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Nominal (normalization) supply voltage.
    #[must_use]
    pub fn v_nominal(&self) -> Volts {
        Volts::new(self.v_nominal)
    }

    /// Threshold voltage for `corner` at temperature `t`.
    #[must_use]
    pub fn vth(&self, corner: ProcessCorner, t: Celsius) -> Volts {
        let vth = self.vth_typical
            + corner.vth_offset()
            + self.dvth_dt * (t.celsius() - self.t_reference);
        Volts::new(vth)
    }

    /// Minimum effective voltage at which the model considers the device
    /// functional (delay factor finite): `Vth + 100 mV` of overdrive.
    #[must_use]
    pub fn min_functional_voltage(&self, corner: ProcessCorner, t: Celsius) -> Volts {
        Volts::new(self.vth(corner, t).volts() + 0.1)
    }

    fn raw_factor(&self, v: Volts, corner: ProcessCorner, t: Celsius) -> f64 {
        let vth = self.vth(corner, t).volts();
        let overdrive = v.volts() - vth;
        if overdrive <= 0.05 {
            return f64::INFINITY;
        }
        let mobility =
            (t.kelvin() / Celsius::new(self.t_reference).kelvin()).powf(self.mobility_exponent);
        v.volts() / overdrive.powf(self.alpha) * mobility * corner.drive_resistance_multiplier()
    }

    /// Normalized gate-delay factor at effective voltage `v`, `corner`,
    /// temperature `t`. Equals 1.0 at (nominal V, typical, 25 °C); larger
    /// is slower. Returns `f64::INFINITY` when the device has less than
    /// 50 mV of overdrive (treated as non-functional).
    #[must_use]
    pub fn delay_factor(&self, v: Volts, corner: ProcessCorner, t: Celsius) -> f64 {
        self.raw_factor(v, corner, t) / self.norm
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::l130_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceModel {
        DeviceModel::l130_default()
    }

    #[test]
    fn normalized_at_anchor() {
        let f = dev().delay_factor(Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_in_voltage() {
        let d = dev();
        let mut last = f64::INFINITY;
        for mv in (500..=1_200).step_by(20) {
            let f = d.delay_factor(
                Volts::new(f64::from(mv) / 1_000.0),
                ProcessCorner::Typical,
                Celsius::HOT,
            );
            assert!(f <= last, "delay factor rose with voltage at {mv} mV");
            last = f;
        }
    }

    #[test]
    fn corner_ordering_at_fixed_point() {
        let d = dev();
        let v = Volts::new(1.0);
        let t = Celsius::HOT;
        let slow = d.delay_factor(v, ProcessCorner::Slow, t);
        let typ = d.delay_factor(v, ProcessCorner::Typical, t);
        let fast = d.delay_factor(v, ProcessCorner::Fast, t);
        assert!(slow > typ && typ > fast);
    }

    #[test]
    fn hot_is_slower_at_high_voltage() {
        // At nominal voltage mobility dominates: 100C slower than 25C.
        let d = dev();
        let v = Volts::new(1.2);
        assert!(
            d.delay_factor(v, ProcessCorner::Typical, Celsius::HOT)
                > d.delay_factor(v, ProcessCorner::Typical, Celsius::ROOM)
        );
    }

    #[test]
    fn temperature_inversion_near_threshold() {
        // Near threshold the Vth drop with temperature wins: hot can be
        // faster. (Known sub-threshold-region effect; the model should
        // reproduce the crossover direction.)
        let d = dev();
        let v = Volts::new(0.42);
        let hot = d.delay_factor(v, ProcessCorner::Typical, Celsius::HOT);
        let cold = d.delay_factor(v, ProcessCorner::Typical, Celsius::ROOM);
        assert!(
            hot < cold,
            "expected temperature inversion: hot={hot} cold={cold}"
        );
    }

    #[test]
    fn non_functional_below_overdrive_margin() {
        let d = dev();
        let vth = d.vth(ProcessCorner::Slow, Celsius::ROOM).volts();
        let f = d.delay_factor(Volts::new(vth + 0.01), ProcessCorner::Slow, Celsius::ROOM);
        assert!(f.is_infinite());
        assert!(
            d.min_functional_voltage(ProcessCorner::Slow, Celsius::ROOM)
                .volts()
                > vth
        );
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn rejects_bad_alpha() {
        let _ = DeviceModel::new(0.9, 0.35, -8.0e-4, 1.5, 1.2);
    }

    #[test]
    #[should_panic(expected = "vth must lie")]
    fn rejects_bad_vth() {
        let _ = DeviceModel::new(1.6, 1.4, -8.0e-4, 1.5, 1.2);
    }
}
