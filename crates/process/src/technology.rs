//! Technology nodes for the §6 scaling study.
//!
//! §6 argues: "With scaled technologies, the wire capacitance does not
//! change appreciably, while the wire resistance increases. As a result,
//! the delay spread on wires due to neighbor switching activity increases
//! (since the R × Cc term increases)" — so the proposed DVS bus should
//! *gain* effectiveness with scaling. These parameter sets (wire R/mm
//! rising steeply, per-mm capacitance nearly flat, devices getting faster
//! and lower-voltage) reproduce that trend; absolute values follow the
//! published ITRS/"Future of Wires" trajectories qualitatively.

use crate::device::DeviceModel;
use razorbus_units::{Femtofarads, Ohms, OhmsPerMillimeter, Volts};

/// A CMOS technology node with its global-wire and unit-device parameters.
///
/// ```
/// use razorbus_process::TechnologyNode;
/// let nodes = TechnologyNode::ALL;
/// // Wire resistance per mm increases monotonically with scaling...
/// assert!(nodes.windows(2).all(|w| {
///     w[1].wire_resistance_per_mm().ohms_per_mm() > w[0].wire_resistance_per_mm().ohms_per_mm()
/// }));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TechnologyNode {
    /// 0.13 µm — the paper's process.
    L130,
    /// 90 nm.
    L90,
    /// 65 nm.
    L65,
    /// 45 nm.
    L45,
}

impl TechnologyNode {
    /// All nodes, oldest (largest) first.
    pub const ALL: [Self; 4] = [Self::L130, Self::L90, Self::L65, Self::L45];

    /// Drawn feature size in nanometers.
    #[must_use]
    pub fn nanometers(self) -> u32 {
        match self {
            Self::L130 => 130,
            Self::L90 => 90,
            Self::L65 => 65,
            Self::L45 => 45,
        }
    }

    /// Global-layer minimum-pitch wire resistance per millimeter at 25 °C.
    /// Rises steeply with scaling (smaller cross-section + barrier/surface
    /// scattering).
    #[must_use]
    pub fn wire_resistance_per_mm(self) -> OhmsPerMillimeter {
        let r = match self {
            Self::L130 => 85.0,
            Self::L90 => 190.0,
            Self::L65 => 420.0,
            Self::L45 => 900.0,
        };
        OhmsPerMillimeter::new(r)
    }

    /// Ground (area + fringe to other layers) capacitance per millimeter
    /// at minimum pitch. Nearly flat across nodes.
    #[must_use]
    pub fn wire_ground_cap_per_mm(self) -> Femtofarads {
        let c = match self {
            Self::L130 => 40.0,
            Self::L90 => 38.0,
            Self::L65 => 36.0,
            Self::L45 => 35.0,
        };
        Femtofarads::new(c)
    }

    /// Coupling capacitance per millimeter to *each* same-layer neighbor
    /// at minimum pitch. Nearly flat (aspect ratios keep rising as pitch
    /// shrinks).
    #[must_use]
    pub fn wire_coupling_cap_per_mm(self) -> Femtofarads {
        let c = match self {
            Self::L130 => 80.0,
            Self::L90 => 82.0,
            Self::L65 => 84.0,
            Self::L45 => 86.0,
        };
        Femtofarads::new(c)
    }

    /// Unit-inverter drive resistance.
    #[must_use]
    pub fn unit_drive_resistance(self) -> Ohms {
        let r = match self {
            Self::L130 => 6_000.0,
            Self::L90 => 5_200.0,
            Self::L65 => 4_500.0,
            Self::L45 => 4_000.0,
        };
        Ohms::new(r)
    }

    /// Unit-inverter input capacitance.
    #[must_use]
    pub fn unit_input_cap(self) -> Femtofarads {
        let c = match self {
            Self::L130 => 1.5,
            Self::L90 => 1.1,
            Self::L65 => 0.8,
            Self::L45 => 0.6,
        };
        Femtofarads::new(c)
    }

    /// Unit-inverter parasitic (diffusion) capacitance.
    #[must_use]
    pub fn unit_parasitic_cap(self) -> Femtofarads {
        let c = match self {
            Self::L130 => 1.2,
            Self::L90 => 0.9,
            Self::L65 => 0.65,
            Self::L45 => 0.5,
        };
        Femtofarads::new(c)
    }

    /// Nominal supply voltage.
    #[must_use]
    pub fn nominal_supply(self) -> Volts {
        let v = match self {
            Self::L130 => 1.2,
            Self::L90 => 1.1,
            Self::L65 => 1.0,
            Self::L45 => 0.95,
        };
        Volts::new(v)
    }

    /// Device model for this node (alpha-power parameters; Vth scales
    /// slower than VDD, which is why voltage sensitivity grows with
    /// scaling).
    #[must_use]
    pub fn device_model(self) -> DeviceModel {
        let (alpha, vth) = match self {
            Self::L130 => (1.6, 0.35),
            Self::L90 => (1.5, 0.33),
            Self::L65 => (1.4, 0.32),
            Self::L45 => (1.35, 0.31),
        };
        DeviceModel::new(alpha, vth, -8.0e-4, 1.5, self.nominal_supply().volts())
    }

    /// The §6 figure of merit: worst-vs-next-pattern delay spread per mm,
    /// `R · Cc` (Elmore difference between switching patterns I and II of
    /// Fig. 9), in picoseconds per mm².
    #[must_use]
    pub fn pattern_delay_spread_per_mm2(self) -> f64 {
        let r = self.wire_resistance_per_mm().ohms_per_mm();
        let cc = self.wire_coupling_cap_per_mm().ff();
        r * cc * 1e-3 // ohm * fF = 1e-3 ps
    }
}

impl core::fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::L130 => f.write_str("0.13 um"),
            node => write!(f, "{} nm", node.nanometers()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_spread_grows_with_scaling() {
        // The §6 claim our scaling experiment rests on.
        let spreads: Vec<f64> = TechnologyNode::ALL
            .iter()
            .map(|n| n.pattern_delay_spread_per_mm2())
            .collect();
        assert!(spreads.windows(2).all(|w| w[1] > w[0]), "{spreads:?}");
    }

    #[test]
    fn capacitance_roughly_flat() {
        for node in TechnologyNode::ALL {
            let total =
                node.wire_ground_cap_per_mm().ff() + 2.0 * node.wire_coupling_cap_per_mm().ff();
            assert!((190.0..=220.0).contains(&total), "{node}: {total}");
        }
    }

    #[test]
    fn supplies_and_devices_scale_down() {
        let v: Vec<f64> = TechnologyNode::ALL
            .iter()
            .map(|n| n.nominal_supply().volts())
            .collect();
        assert!(v.windows(2).all(|w| w[1] < w[0]));
        for node in TechnologyNode::ALL {
            // Device model normalizes at the node's own nominal supply.
            let dev = node.device_model();
            let f = dev.delay_factor(
                node.nominal_supply(),
                crate::ProcessCorner::Typical,
                razorbus_units::Celsius::ROOM,
            );
            assert!((f - 1.0).abs() < 1e-12, "{node}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TechnologyNode::L130.to_string(), "0.13 um");
        assert_eq!(TechnologyNode::L45.to_string(), "45 nm");
    }
}
