//! Process, device and environment models for the razorbus simulator.
//!
//! The paper characterizes its 6 mm bus with HSPICE at every combination of
//! process corner (slow/typical/fast), temperature (25 °C/100 °C), IR drop
//! (none/10 %) and supply voltage (20 mV grid). This crate supplies the
//! analytical stand-ins for those device physics:
//!
//! * [`ProcessCorner`] — corner-dependent threshold voltage, drive strength
//!   and leakage multipliers.
//! * [`DeviceModel`] — alpha-power-law delay factor vs. effective voltage
//!   and temperature, normalized to the nominal operating point.
//! * [`Repeater`] — a sized repeater (driver) with drive resistance, input
//!   and parasitic capacitance and leakage.
//! * [`LeakageModel`] — subthreshold + DIBL leakage vs. (V, T, corner).
//! * [`IrDrop`] and [`DroopModel`] — static supply drop corners plus the
//!   vector-dependent droop at repeater banks that §1 of the paper calls
//!   out ("IR-drop at repeater blocks in a bus are strongly dependent on
//!   the input vectors").
//! * [`PvtCorner`] — the paper's named PVT corners.
//! * [`TechnologyNode`] — 130/90/65/45 nm wire/device parameter sets for
//!   the §6 technology-scaling study.
//!
//! # Example
//!
//! ```
//! use razorbus_process::{DeviceModel, ProcessCorner};
//! use razorbus_units::{Celsius, Volts};
//!
//! let dev = DeviceModel::l130_default();
//! // Nominal point is the normalization anchor.
//! let f_nom = dev.delay_factor(Volts::new(1.2), ProcessCorner::Typical, Celsius::ROOM);
//! assert!((f_nom - 1.0).abs() < 1e-12);
//! // Lower voltage is always slower.
//! let f_low = dev.delay_factor(Volts::new(0.9), ProcessCorner::Typical, Celsius::ROOM);
//! assert!(f_low > f_nom);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corner;
mod device;
mod leakage;
mod pvt;
mod repeater;
mod supply;
mod technology;

pub use corner::ProcessCorner;
pub use device::DeviceModel;
pub use leakage::LeakageModel;
pub use pvt::PvtCorner;
pub use repeater::Repeater;
pub use supply::{DroopModel, IrDrop, SupplyCondition};
pub use technology::TechnologyNode;
