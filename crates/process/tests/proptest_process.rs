//! Property-based tests for the process models: monotonicity of the
//! alpha-power delay factor, leakage scaling laws, and supply composition.

use proptest::prelude::*;
use razorbus_process::{
    DeviceModel, DroopModel, IrDrop, LeakageModel, ProcessCorner, Repeater, SupplyCondition,
};
use razorbus_units::{Celsius, Picoseconds, Volts};

fn corners() -> impl Strategy<Value = ProcessCorner> {
    prop_oneof![
        Just(ProcessCorner::Slow),
        Just(ProcessCorner::Typical),
        Just(ProcessCorner::Fast),
    ]
}

proptest! {
    #[test]
    fn delay_factor_monotone_decreasing_in_v(
        corner in corners(),
        t in 0.0f64..125.0,
        v in 0.6f64..1.19,
        dv in 0.005f64..0.2,
    ) {
        let dev = DeviceModel::l130_default();
        let t = Celsius::new(t);
        let f_lo = dev.delay_factor(Volts::new(v), corner, t);
        let f_hi = dev.delay_factor(Volts::new(v + dv), corner, t);
        prop_assert!(f_hi <= f_lo, "raising V from {v} by {dv} slowed the device");
    }

    #[test]
    fn delay_factor_slow_dominates_fast(
        t in 0.0f64..125.0,
        v in 0.7f64..1.2,
    ) {
        let dev = DeviceModel::l130_default();
        let t = Celsius::new(t);
        let slow = dev.delay_factor(Volts::new(v), ProcessCorner::Slow, t);
        let fast = dev.delay_factor(Volts::new(v), ProcessCorner::Fast, t);
        prop_assert!(slow > fast);
    }

    #[test]
    fn delay_factor_finite_above_min_functional(
        corner in corners(),
        t in 0.0f64..125.0,
        extra in 0.001f64..0.5,
    ) {
        let dev = DeviceModel::l130_default();
        let t = Celsius::new(t);
        let v = Volts::new(dev.min_functional_voltage(corner, t).volts() + extra);
        prop_assert!(dev.delay_factor(v, corner, t).is_finite());
    }

    #[test]
    fn leakage_monotone_in_temperature(
        corner in corners(),
        v in 0.6f64..1.2,
        t in 0.0f64..99.0,
        dt in 1.0f64..26.0,
    ) {
        let leak = LeakageModel::l130_default();
        let lo = leak.current_ua(1.0, Volts::new(v), corner, Celsius::new(t));
        let hi = leak.current_ua(1.0, Volts::new(v), corner, Celsius::new(t + dt));
        prop_assert!(hi > lo);
    }

    #[test]
    fn leakage_energy_linear_in_period(
        v in 0.6f64..1.2,
        ps in 100.0f64..2_000.0,
        k in 1.5f64..4.0,
    ) {
        let leak = LeakageModel::l130_default();
        let e1 = leak.energy_per_cycle(10.0, Volts::new(v), ProcessCorner::Typical,
            Celsius::HOT, Picoseconds::new(ps));
        let e2 = leak.energy_per_cycle(10.0, Volts::new(v), ProcessCorner::Typical,
            Celsius::HOT, Picoseconds::new(ps * k));
        prop_assert!((e2.fj() - e1.fj() * k).abs() <= 1e-9 * e2.fj().max(1e-12));
    }

    #[test]
    fn repeater_delay_r_times_c_invariant_under_width(
        w in 1.0f64..200.0,
        k in 1.1f64..8.0,
        v in 0.7f64..1.2,
    ) {
        // R_drv * C_in is width-invariant: the intrinsic fanout-of-1 delay.
        let a = Repeater::l130(w);
        let b = Repeater::l130(w * k);
        let t = Celsius::HOT;
        let ra = a.drive_resistance(Volts::new(v), ProcessCorner::Typical, t);
        let rb = b.drive_resistance(Volts::new(v), ProcessCorner::Typical, t);
        let pa = ra * a.input_capacitance();
        let pb = rb * b.input_capacitance();
        prop_assert!((pa.ps() - pb.ps()).abs() <= 1e-9 * pa.ps().max(1e-12));
    }

    #[test]
    fn effective_voltage_never_exceeds_setpoint(
        v in 0.5f64..1.3,
        activity in 0.0f64..1.0,
        droop in 0.0f64..0.2,
    ) {
        for ir in IrDrop::ALL {
            let cond = SupplyCondition::new(ir, DroopModel::new(droop));
            let eff = cond.effective_voltage(Volts::new(v), activity);
            prop_assert!(eff.volts() <= v + 1e-12);
            prop_assert!(eff.volts() >= 0.0);
        }
    }

    #[test]
    fn droop_monotone_in_activity(
        max in 0.0f64..0.2,
        a in 0.0f64..1.0,
        da in 0.0f64..0.5,
    ) {
        let d = DroopModel::new(max);
        let a2 = (a + da).min(1.0);
        prop_assert!(d.droop_fraction(a2) >= d.droop_fraction(a));
    }
}
