//! Fig. 5: energy gains achievable at target error rates (0 %, 2 %, 5 %)
//! across the PVT-corner delay spread.

use crate::design::DvsBusDesign;
use crate::experiments::combined_summary;
use crate::summary::TraceSummary;
use razorbus_process::PvtCorner;
use razorbus_units::{Millivolts, Picoseconds};

/// The three target error rates of the figure.
pub const TARGETS: [f64; 3] = [0.0, 0.02, 0.05];

/// One corner's row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// The PVT corner (points 1–5 of the figure).
    pub corner: PvtCorner,
    /// Worst-pattern delay at the nominal supply — the figure's x-axis.
    pub delay_at_nominal: Picoseconds,
    /// Chosen supply per target.
    pub voltage: [Millivolts; 3],
    /// Energy gain (fraction) per target — the figure's y-axis.
    pub gain: [f64; 3],
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// Rows in the paper's corner numbering (1 = worst … 5 = best).
    pub rows: Vec<Fig5Row>,
}

/// Computes the figure from a combined-benchmark summary.
#[must_use]
pub fn run(design: &DvsBusDesign, cycles_per_benchmark: u64, seed: u64) -> Fig5Data {
    let summary = combined_summary(design, cycles_per_benchmark, seed);
    from_summary(design, &summary)
}

/// Computes the figure from an already-collected combined summary.
#[must_use]
pub fn from_summary(design: &DvsBusDesign, summary: &TraceSummary) -> Fig5Data {
    Fig5Data {
        rows: rows_from_summary(design, summary),
    }
}

/// Same, reusing an already-collected summary (used by Fig. 10).
#[must_use]
pub fn rows_from_summary(design: &DvsBusDesign, summary: &TraceSummary) -> Vec<Fig5Row> {
    PvtCorner::FIG5
        .iter()
        .map(|&corner| {
            let mut voltage = [design.nominal(); 3];
            let mut gain = [0.0f64; 3];
            for (i, &target) in TARGETS.iter().enumerate() {
                let v = summary.lowest_voltage_for_error_rate(design, corner, target);
                voltage[i] = v;
                gain[i] = summary.energy_gain(design, corner, v);
            }
            Fig5Row {
                corner,
                delay_at_nominal: design.delay_at_nominal(corner),
                voltage,
                gain,
            }
        })
        .collect()
}

impl Fig5Data {
    /// Prints the figure as a table.
    pub fn print(&self) {
        println!("Fig. 5 — energy gains vs. PVT-corner delay spread");
        println!(
            "{:<38} {:>12} {:>22} {:>22} {:>22}",
            "corner", "delay(ps)", "gain@0% (V)", "gain@2% (V)", "gain@5% (V)"
        );
        for (i, row) in self.rows.iter().enumerate() {
            println!(
                "{} {:<36} {:>12.1} {:>14.1}% ({:>4}) {:>14.1}% ({:>4}) {:>14.1}% ({:>4})",
                i + 1,
                row.corner.to_string(),
                row.delay_at_nominal.ps(),
                row.gain[0] * 100.0,
                row.voltage[0].mv(),
                row.gain[1] * 100.0,
                row.voltage[1].mv(),
                row.gain[2] * 100.0,
                row.voltage[2].mv(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_grow_toward_faster_corners() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, 3_000, 5);
        assert_eq!(data.rows.len(), 5);
        // At every target, the best corner gains at least as much as the
        // worst corner, and substantially so at 0%.
        for t in 0..3 {
            assert!(data.rows[4].gain[t] >= data.rows[0].gain[t]);
        }
        assert!(data.rows[4].gain[0] > 0.30, "best-corner 0% gain");
        // Design corner allows no zero-error scaling.
        assert!(data.rows[0].gain[0] < 0.03, "{}", data.rows[0].gain[0]);
    }

    #[test]
    fn higher_target_never_gains_less() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, 3_000, 5);
        for row in &data.rows {
            assert!(row.gain[1] >= row.gain[0] - 1e-12);
            assert!(row.gain[2] >= row.gain[1] - 1e-12);
            assert!(row.voltage[2] <= row.voltage[1]);
        }
    }

    #[test]
    fn typical_corner_matches_paper_band() {
        // Paper: "gains of 35% for the typical process corner with no
        // performance degradation". Our calibration: 30-50%.
        let d = DvsBusDesign::paper_default();
        let data = run(&d, 5_000, 5);
        let typical = &data.rows[2];
        assert!(
            (0.25..0.55).contains(&typical.gain[0]),
            "typical 0% gain {}",
            typical.gain[0]
        );
    }
}
