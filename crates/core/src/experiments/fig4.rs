//! Fig. 4: normalized energy and error rate vs. statically scaled supply
//! voltage, for one PVT corner, all ten benchmarks combined.

use crate::design::DvsBusDesign;
use crate::experiments::combined_summary;
use razorbus_process::PvtCorner;
use razorbus_units::Millivolts;

/// One swept supply point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Supply voltage.
    pub voltage: Millivolts,
    /// Bus energy (no recovery overhead), normalized to the nominal
    /// supply — the paper's "Energy" curve.
    pub bus_energy_norm: f64,
    /// Bus energy plus recovery overhead, normalized — the paper's
    /// "Bus energy + Recovery overhead" curve.
    pub total_energy_norm: f64,
    /// Error rate (fraction of cycles).
    pub error_rate: f64,
}

/// The data behind one panel of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// The swept corner.
    pub corner: PvtCorner,
    /// Points from the corner's shadow floor up to nominal (ascending V).
    pub points: Vec<Fig4Point>,
}

/// Runs the Fig. 4 sweep at `corner` with all ten benchmarks for
/// `cycles_per_benchmark` cycles each.
#[must_use]
pub fn run(
    design: &DvsBusDesign,
    corner: PvtCorner,
    cycles_per_benchmark: u64,
    seed: u64,
) -> Fig4Data {
    let summary = combined_summary(design, cycles_per_benchmark, seed);
    from_summary(design, corner, &summary)
}

/// Computes the panel from an already-collected combined summary — the
/// histogram is corner-independent, so both Fig. 4 panels (and Fig. 5,
/// Table 1, …) can share one collection.
#[must_use]
pub fn from_summary(
    design: &DvsBusDesign,
    corner: PvtCorner,
    summary: &crate::summary::TraceSummary,
) -> Fig4Data {
    let nominal = design.nominal();
    let base = summary.energy(design, corner, nominal, false);
    let floor = design.static_shadow_floor(corner);
    let points = design
        .grid()
        .iter()
        .filter(|&v| v >= floor)
        .map(|v| Fig4Point {
            voltage: v,
            bus_energy_norm: summary.energy(design, corner, v, false) / base,
            total_energy_norm: summary.energy(design, corner, v, true) / base,
            error_rate: summary.error_rate(design, corner, v),
        })
        .collect();
    Fig4Data { corner, points }
}

impl Fig4Data {
    /// Prints the panel as a table (VDD, normalized energies, error rate).
    pub fn print(&self) {
        println!("Fig. 4 — {}", self.corner);
        println!(
            "{:>8} {:>12} {:>18} {:>12}",
            "VDD(mV)", "E(bus,norm)", "E(bus+rec,norm)", "err rate(%)"
        );
        for p in &self.points {
            println!(
                "{:>8} {:>12.4} {:>18.4} {:>12.3}",
                p.voltage.mv(),
                p.bus_energy_norm,
                p.total_energy_norm,
                p.error_rate * 100.0
            );
        }
    }

    /// Highest voltage at which any errors appear (the "point of first
    /// failure" visible in the panel), if any.
    #[must_use]
    pub fn first_failure_voltage(&self) -> Option<Millivolts> {
        self.points
            .iter()
            .rev()
            .find(|p| p.error_rate > 0.0)
            .map(|p| p.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_match_paper() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, PvtCorner::TYPICAL, 3_000, 7);
        // Energy normalized to 1.0 at nominal.
        let last = data.points.last().unwrap();
        assert_eq!(last.voltage, Millivolts::new(1_200));
        assert!((last.bus_energy_norm - 1.0).abs() < 1e-9);
        assert_eq!(last.error_rate, 0.0);
        // Energy decreases and error rate increases toward the floor.
        for w in data.points.windows(2) {
            assert!(w[0].bus_energy_norm <= w[1].bus_energy_norm + 1e-12);
            assert!(w[0].error_rate >= w[1].error_rate - 1e-12);
        }
        // Recovery overhead never reduces energy.
        for p in &data.points {
            assert!(p.total_energy_norm >= p.bus_energy_norm - 1e-12);
        }
    }

    #[test]
    fn worst_corner_fails_immediately_below_nominal() {
        // Fig. 4a: "the error rates increase as soon as the supply
        // voltage is lowered below the nominal 1.2V supply".
        let d = DvsBusDesign::paper_default();
        let data = run(&d, PvtCorner::WORST, 3_000, 3);
        let first_fail = data.first_failure_voltage().unwrap();
        assert!(first_fail >= Millivolts::new(1_160), "{first_fail}");
    }

    #[test]
    fn typical_corner_scales_before_failing() {
        // Fig. 4b: "no errors are introduced up to a 980mV supply".
        let d = DvsBusDesign::paper_default();
        let data = run(&d, PvtCorner::TYPICAL, 3_000, 3);
        let first_fail = data.first_failure_voltage().unwrap();
        assert!(
            first_fail <= Millivolts::new(1_000),
            "typical corner failed too early: {first_fail}"
        );
    }
}
