//! Fig. 10 and the §6 modified-bus analysis: boost the coupling ratio
//! (Cc/Cg × 1.95) at constant worst-case delay, re-run the static-gain
//! and DVS analyses, and compare against the original bus.

use crate::design::DvsBusDesign;
use crate::experiments::{combined_summary, fig5, fig8};
use razorbus_process::PvtCorner;

/// The modified-vs-original comparison.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Fig. 5 rows for the original bus.
    pub original: Vec<fig5::Fig5Row>,
    /// Fig. 5 rows for the modified (Cc/Cg × 1.95) bus.
    pub modified: Vec<fig5::Fig5Row>,
    /// §6's headline: worst-corner consecutive-DVS average gain,
    /// original vs. modified (paper: 6.3 % → 8.2 %).
    pub worst_corner_dvs_gain: (f64, f64),
    /// Worst-corner DVS error rates for both buses (must stay ≤ ~2 %).
    pub worst_corner_dvs_error: (f64, f64),
    /// Shadow skews (ps): the modified bus's faster short path tightens
    /// the skew (§6's noted trade-off).
    pub shadow_skew_ps: (f64, f64),
}

/// Runs the §6 comparison.
#[must_use]
pub fn run(
    base: &DvsBusDesign,
    modified: &DvsBusDesign,
    cycles_per_benchmark: u64,
    seed: u64,
) -> Fig10Data {
    let base_summary = combined_summary(base, cycles_per_benchmark, seed);
    let mod_summary = combined_summary(modified, cycles_per_benchmark, seed);
    let base_dvs = fig8::run(base, PvtCorner::WORST, cycles_per_benchmark, seed);
    let mod_dvs = fig8::run(modified, PvtCorner::WORST, cycles_per_benchmark, seed);
    from_parts(
        base,
        modified,
        &base_summary,
        &mod_summary,
        &base_dvs,
        &mod_dvs,
    )
}

/// Builds the comparison from pre-collected inputs — the base-bus
/// summary and worst-corner DVS run are shared with Fig. 4/5 and Table 1
/// by `repro all`.
#[must_use]
pub fn from_parts(
    base: &DvsBusDesign,
    modified: &DvsBusDesign,
    base_summary: &crate::summary::TraceSummary,
    mod_summary: &crate::summary::TraceSummary,
    base_dvs: &fig8::Fig8Data,
    mod_dvs: &fig8::Fig8Data,
) -> Fig10Data {
    let original_rows = fig5::rows_from_summary(base, base_summary);
    let modified_rows = fig5::rows_from_summary(modified, mod_summary);

    Fig10Data {
        original: original_rows,
        modified: modified_rows,
        worst_corner_dvs_gain: (base_dvs.total_energy_gain(), mod_dvs.total_energy_gain()),
        worst_corner_dvs_error: (base_dvs.total_error_rate(), mod_dvs.total_error_rate()),
        shadow_skew_ps: (
            base.skew().chosen_skew().ps(),
            modified.skew().chosen_skew().ps(),
        ),
    }
}

impl Fig10Data {
    /// Prints the comparison.
    pub fn print(&self) {
        println!("Fig. 10 — modified bus (Cc/Cg x1.95, same worst-case delay)");
        println!(
            "  shadow skew: original {:.0} ps -> modified {:.0} ps",
            self.shadow_skew_ps.0, self.shadow_skew_ps.1
        );
        println!(
            "  {:<38} {:>22} {:>22} {:>22}",
            "corner", "gain@0% orig->mod", "gain@2% orig->mod", "gain@5% orig->mod"
        );
        for (o, m) in self.original.iter().zip(&self.modified) {
            println!(
                "  {:<38} {:>9.1}% ->{:>8.1}% {:>9.1}% ->{:>8.1}% {:>9.1}% ->{:>8.1}%",
                o.corner.to_string(),
                o.gain[0] * 100.0,
                m.gain[0] * 100.0,
                o.gain[1] * 100.0,
                m.gain[1] * 100.0,
                o.gain[2] * 100.0,
                m.gain[2] * 100.0,
            );
        }
        println!(
            "  worst-corner DVS average gain: {:.1}% -> {:.1}% (err {:.2}% -> {:.2}%)",
            self.worst_corner_dvs_gain.0 * 100.0,
            self.worst_corner_dvs_gain.1 * 100.0,
            self.worst_corner_dvs_error.0 * 100.0,
            self.worst_corner_dvs_error.1 * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modified_bus_improves_error_limited_gains() {
        let base = DvsBusDesign::paper_default();
        let modified = DvsBusDesign::modified_paper_bus();
        let data = run(&base, &modified, 20_000, 4);

        // §6: the paper reports "slightly higher" 2%/5% gains (about one
        // 20 mV grid step at most corners). In our continuum coupling
        // model the shift is sub-quantization at some corners, so the
        // robust invariants are: never materially worse at the 2% target,
        // identical 0% gains (worst-case delay preserved), and the
        // headline worst-corner DVS average not degrading.
        for (o, m) in data.original.iter().zip(&data.modified) {
            assert!(m.gain[1] >= o.gain[1] - 0.02, "{}", o.corner);
            assert!(
                (m.gain[0] - o.gain[0]).abs() < 0.02,
                "{}: 0%-gain moved {} -> {}",
                o.corner,
                o.gain[0],
                m.gain[0]
            );
        }
        assert!(
            data.worst_corner_dvs_gain.1 > data.worst_corner_dvs_gain.0 - 0.01,
            "modified {} much worse than original {}",
            data.worst_corner_dvs_gain.1,
            data.worst_corner_dvs_gain.0
        );
        // The noted trade-off: the shadow skew shrinks.
        assert!(data.shadow_skew_ps.1 <= data.shadow_skew_ps.0);
    }
}
