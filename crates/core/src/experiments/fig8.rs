//! Fig. 8: the closed-loop trajectory — supply voltage and instantaneous
//! error rate while the ten benchmarks run consecutively under the §5
//! controller.

use crate::design::DvsBusDesign;
use crate::sim::{BusSimulator, SimReport, VoltageSample};
use razorbus_ctrl::ThresholdController;
use razorbus_process::PvtCorner;
use razorbus_traces::Benchmark;

/// Per-program slice of the consecutive run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig8Segment {
    /// The program (regions 1–10 of the figure).
    pub benchmark: Benchmark,
    /// First cycle of this program's region.
    pub start_cycle: u64,
    /// The program's run report (energy, errors, voltages).
    pub report: SimReport,
}

/// The trajectory data.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig8Data {
    /// The environment corner of the run.
    pub corner: PvtCorner,
    /// Program regions in execution order.
    pub segments: Vec<Fig8Segment>,
    /// Window samples across the whole run (cycle numbers are global).
    pub samples: Vec<VoltageSample>,
}

/// Runs the ten benchmarks consecutively (each `cycles_per_benchmark`
/// cycles) under one controller that is *not* reset between programs —
/// exactly the Fig. 8 setup, starting from the nominal supply.
#[must_use]
pub fn run(
    design: &DvsBusDesign,
    corner: PvtCorner,
    cycles_per_benchmark: u64,
    seed: u64,
) -> Fig8Data {
    run_inner(design, corner, cycles_per_benchmark, seed, false).0
}

/// Same consecutive run, additionally returning each benchmark's
/// sweep-engine summary, collected as a by-product of the closed loop
/// (same trace words, one pass). The summaries are bit-identical to
/// [`crate::TraceSummary::collect`] over the same `(benchmark, seed,
/// cycles)` and are corner-independent — `repro all` and Table 1 use
/// this to avoid a second 10-benchmark pass.
#[must_use]
pub fn run_with_summaries(
    design: &DvsBusDesign,
    corner: PvtCorner,
    cycles_per_benchmark: u64,
    seed: u64,
) -> (Fig8Data, Vec<(Benchmark, crate::TraceSummary)>) {
    let (data, summaries) = run_inner(design, corner, cycles_per_benchmark, seed, true);
    (data, summaries)
}

fn run_inner(
    design: &DvsBusDesign,
    corner: PvtCorner,
    cycles_per_benchmark: u64,
    seed: u64,
    with_summaries: bool,
) -> (Fig8Data, Vec<(Benchmark, crate::TraceSummary)>) {
    let mut controller = ThresholdController::new(design.controller_config(corner.process));
    let mut segments = Vec::with_capacity(Benchmark::ALL.len());
    let mut samples = Vec::new();
    let mut summaries = Vec::new();
    let mut offset = 0u64;
    for benchmark in Benchmark::ALL {
        let trace = benchmark.trace(seed);
        let mut sim = BusSimulator::new(design, corner, trace, controller).with_sampling(10_000);
        if with_summaries {
            sim = sim.with_histogram();
        }
        let mut report = sim.run(cycles_per_benchmark);
        controller = sim.into_governor();
        if let Some(summary) = report.summary.take() {
            summaries.push((benchmark, summary));
        }
        for s in &mut report.samples {
            s.cycle += offset;
        }
        samples.extend(report.samples.iter().copied());
        segments.push(Fig8Segment {
            benchmark,
            start_cycle: offset,
            report,
        });
        offset += cycles_per_benchmark;
    }
    (
        Fig8Data {
            corner,
            segments,
            samples,
        },
        summaries,
    )
}

impl Fig8Data {
    /// Overall energy gain across the whole consecutive run.
    #[must_use]
    pub fn total_energy_gain(&self) -> f64 {
        let energy: f64 = self.segments.iter().map(|s| s.report.energy.fj()).sum();
        let base: f64 = self
            .segments
            .iter()
            .map(|s| s.report.baseline_energy.fj())
            .sum();
        1.0 - energy / base
    }

    /// Overall average error rate.
    #[must_use]
    pub fn total_error_rate(&self) -> f64 {
        let errors: u64 = self.segments.iter().map(|s| s.report.errors).sum();
        let cycles: u64 = self.segments.iter().map(|s| s.report.cycles).sum();
        errors as f64 / cycles as f64
    }

    /// Peak instantaneous (per-window) error rate — the paper observes
    /// spikes up to ~6 % caused by the regulator ramp delay.
    #[must_use]
    pub fn peak_window_error_rate(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.window_error_rate)
            .fold(0.0, f64::max)
    }

    /// Prints a decimated trajectory plus the per-program summary.
    pub fn print(&self) {
        println!("Fig. 8 — closed-loop trajectory ({})", self.corner);
        println!("{:>12} {:>9} {:>10}", "cycle", "VDD(mV)", "err(%)");
        let stride = (self.samples.len() / 60).max(1);
        for s in self.samples.iter().step_by(stride) {
            println!(
                "{:>12} {:>9} {:>10.2}",
                s.cycle,
                s.voltage.mv(),
                s.window_error_rate * 100.0
            );
        }
        println!("  per-program regions:");
        for (i, seg) in self.segments.iter().enumerate() {
            println!(
                "  {:>2}. {:<8} gain {:>5.1}%  avg err {:>5.2}%  min VDD {} mV",
                i + 1,
                seg.benchmark.name(),
                seg.report.energy_gain() * 100.0,
                seg.report.error_rate() * 100.0,
                seg.report.min_voltage.mv(),
            );
        }
        println!(
            "  TOTAL: gain {:.1}%, err {:.2}%, peak window err {:.1}%",
            self.total_energy_gain() * 100.0,
            self.total_error_rate() * 100.0,
            self.peak_window_error_rate() * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_run_adapts_per_program() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, PvtCorner::TYPICAL, 60_000, 3);
        assert_eq!(data.segments.len(), 10);
        // No silent corruption anywhere.
        assert!(data
            .segments
            .iter()
            .all(|s| s.report.shadow_violations == 0));
        // The controller finds gains overall and per the light programs.
        assert!(
            data.total_energy_gain() > 0.2,
            "{}",
            data.total_energy_gain()
        );
        // Average error rate near the band.
        assert!(
            data.total_error_rate() < 0.03,
            "{}",
            data.total_error_rate()
        );
        // mgrid (region 3, heavy) must run hotter than gap (region 9,
        // light) — both inherit a converged controller from their
        // predecessor, unlike region 1 which pays the 1.2 V descent.
        let mgrid = &data.segments[2].report;
        let gap = &data.segments[8].report;
        assert!(
            mgrid.mean_voltage_mv > gap.mean_voltage_mv,
            "mgrid {} !> gap {}",
            mgrid.mean_voltage_mv,
            gap.mean_voltage_mv
        );
    }

    #[test]
    fn samples_are_globally_ordered() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, PvtCorner::TYPICAL, 30_000, 1);
        assert!(data.samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
        // 3 windows of 10k per 30k-cycle program, 10 programs.
        assert_eq!(data.samples.len(), 30);
    }
}
