//! §6's technology-scaling argument, made quantitative: "With scaled
//! technologies … the delay spread on wires due to neighbor switching
//! activity increases (since the R × Cc term increases). The proposed bus
//! design results in a higher energy savings with an increased difference
//! in delay between worst-case and more typical switching activities and,
//! therefore, can be expected to scale well with technology."

use crate::design::DvsBusDesign;
use crate::experiments::combined_summary;
use razorbus_process::{ProcessCorner, PvtCorner, TechnologyNode};
use razorbus_units::Picoseconds;

/// One technology node's row.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// The node.
    pub node: TechnologyNode,
    /// The §6 figure of merit `R·Cc` (ps per mm²).
    pub pattern_spread_per_mm2: f64,
    /// Worst-case vs. best-case pattern delay ratio at the node's design
    /// point (how much data-dependent slack exists).
    pub pattern_delay_ratio: f64,
    /// Design target delay (10 % slack over the achievable optimum).
    pub target_delay: Picoseconds,
    /// Static energy gain at the typical corner, 2 % error target.
    pub typical_gain_2pct: f64,
    /// DVS supply range: nominal − lowest usable grid voltage, in mV
    /// (normalized by nominal in `relative_range`).
    pub relative_scaling_range: f64,
}

/// The scaling study.
#[derive(Debug, Clone)]
pub struct ScalingData {
    /// Rows, oldest node first.
    pub rows: Vec<ScalingRow>,
}

/// Runs the study across all four nodes.
///
/// # Panics
///
/// Panics if a node fails to produce a sizable design (the parameter
/// sets in `razorbus-process` are chosen so all four succeed).
#[must_use]
pub fn run(cycles_per_benchmark: u64, seed: u64) -> ScalingData {
    let rows = TechnologyNode::ALL
        .iter()
        .map(|&node| {
            let design = DvsBusDesign::for_technology(node).expect("node design");
            let bus = design.bus();
            let summary = combined_summary(&design, cycles_per_benchmark, seed);
            let corner = PvtCorner::TYPICAL;
            let v = summary.lowest_voltage_for_error_rate(&design, corner, 0.02);
            let gain = summary.energy_gain(&design, corner, v);
            let worst = bus.worst_case_delay_at_design_corner();
            let best = bus.delay(
                bus.best_effective_cap_per_mm(),
                design.nominal().to_volts() * (1.0 - design.bus().design_corner().ir.fraction()),
                ProcessCorner::Slow,
                razorbus_units::Celsius::HOT,
            );
            let floor = design.static_shadow_floor(corner);
            ScalingRow {
                node,
                pattern_spread_per_mm2: node.pattern_delay_spread_per_mm2(),
                pattern_delay_ratio: worst.ps() / best.ps(),
                target_delay: bus.max_path_delay(),
                typical_gain_2pct: gain,
                relative_scaling_range: f64::from((design.nominal() - floor).mv())
                    / f64::from(design.nominal().mv()),
            }
        })
        .collect();
    ScalingData { rows }
}

impl ScalingData {
    /// Prints the study.
    pub fn print(&self) {
        println!("§6 — technology scaling of the DVS bus");
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>16} {:>14}",
            "node", "R*Cc(ps/mm2)", "worst/best", "target(ps)", "typ gain@2%", "DVS range"
        );
        for r in &self.rows {
            println!(
                "{:>8} {:>14.2} {:>14.2} {:>12.0} {:>15.1}% {:>13.1}%",
                r.node.to_string(),
                r.pattern_spread_per_mm2,
                r.pattern_delay_ratio,
                r.target_delay.ps(),
                r.typical_gain_2pct * 100.0,
                r.relative_scaling_range * 100.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_spread_and_delay_ratio_grow_with_scaling() {
        let data = run(2_000, 6);
        assert_eq!(data.rows.len(), 4);
        // The §6 claim: R*Cc strictly increases.
        assert!(data
            .rows
            .windows(2)
            .all(|w| w[1].pattern_spread_per_mm2 > w[0].pattern_spread_per_mm2));
        // Worst/best pattern ratio widens (more data-dependent slack).
        assert!(
            data.rows[3].pattern_delay_ratio > data.rows[0].pattern_delay_ratio,
            "{:?}",
            data.rows
                .iter()
                .map(|r| r.pattern_delay_ratio)
                .collect::<Vec<_>>()
        );
        // Gains remain substantial at every node.
        for r in &data.rows {
            assert!(
                r.typical_gain_2pct > 0.10,
                "{}: gain {}",
                r.node,
                r.typical_gain_2pct
            );
        }
    }
}
