//! One driver per table/figure of the paper's evaluation.
//!
//! | Paper artifact | Function | Output |
//! |---|---|---|
//! | Fig. 4a/4b | [`fig4::run`] | energy & error rate vs. VDD |
//! | Fig. 5 | [`fig5::run`] | energy gain vs. delay@1.2 V per corner/target |
//! | Fig. 6 | [`fig6::run`] | oracle voltage residency per program |
//! | Fig. 8 | [`fig8::run`] | closed-loop VDD / error-rate trajectory |
//! | Table 1 | [`table1::run`] | fixed-VS vs. proposed-DVS gains per program |
//! | Fig. 10 + §6 | [`fig10::run`] | modified-bus gains |
//! | §6 scaling | [`scaling::run`] | technology-node trends |
//!
//! Every driver returns a printable data structure; the `razorbus-bench`
//! crate exposes them as Criterion benches and the `repro` binary.

pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod scaling;
pub mod table1;

use crate::design::DvsBusDesign;
use crate::summary::TraceSummary;
use razorbus_traces::Benchmark;

/// Collects per-benchmark summaries (all ten programs) in parallel.
#[must_use]
pub fn per_benchmark_summaries(
    design: &DvsBusDesign,
    cycles_per_benchmark: u64,
    seed: u64,
) -> Vec<(Benchmark, TraceSummary)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = Benchmark::ALL
            .iter()
            .map(|&b| {
                scope.spawn(move || {
                    let mut trace = b.trace(seed);
                    (
                        b,
                        TraceSummary::collect(design, &mut trace, cycles_per_benchmark),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("summary worker"))
            .collect()
    })
}

/// Merges all ten benchmarks into one combined summary (the "running all
/// the benchmark programs" aggregation of Figs. 4/5).
#[must_use]
pub fn combined_summary(
    design: &DvsBusDesign,
    cycles_per_benchmark: u64,
    seed: u64,
) -> TraceSummary {
    let per = per_benchmark_summaries(design, cycles_per_benchmark, seed);
    let mut iter = per.into_iter();
    let (_, mut merged) = iter.next().expect("at least one benchmark");
    for (_, s) in iter {
        merged.merge(&s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_summary_spans_all_benchmarks() {
        let d = DvsBusDesign::paper_default();
        let s = combined_summary(&d, 2_000, 1);
        assert_eq!(s.cycles(), 20_000);
    }
}
