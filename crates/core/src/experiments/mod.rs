//! One driver per table/figure of the paper's evaluation.
//!
//! | Paper artifact | Function | Output |
//! |---|---|---|
//! | Fig. 4a/4b | [`fig4::run`] | energy & error rate vs. VDD |
//! | Fig. 5 | [`fig5::run`] | energy gain vs. delay@1.2 V per corner/target |
//! | Fig. 6 | [`fig6::run`] | oracle voltage residency per program |
//! | Fig. 8 | [`fig8::run`] | closed-loop VDD / error-rate trajectory |
//! | Table 1 | [`table1::run`] | fixed-VS vs. proposed-DVS gains per program |
//! | Fig. 10 + §6 | [`fig10::run`] | modified-bus gains |
//! | §6 scaling | [`scaling::run`] | technology-node trends |
//!
//! Every driver returns a printable data structure; the `razorbus-bench`
//! crate exposes them as Criterion benches and the `repro` binary.

pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod scaling;
pub mod table1;

use crate::design::DvsBusDesign;
use crate::summary::TraceSummary;
use razorbus_traces::Benchmark;

/// Collects per-benchmark summaries (all ten programs) in parallel.
#[must_use]
pub fn per_benchmark_summaries(
    design: &DvsBusDesign,
    cycles_per_benchmark: u64,
    seed: u64,
) -> Vec<(Benchmark, TraceSummary)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = Benchmark::ALL
            .iter()
            .map(|&b| {
                scope.spawn(move || {
                    let mut trace = b.trace(seed);
                    (
                        b,
                        TraceSummary::collect(design, &mut trace, cycles_per_benchmark),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("summary worker"))
            .collect()
    })
}

/// The per-benchmark histograms plus their all-programs merge, collected
/// once and then reused across every static sweep.
///
/// A summary depends only on `(design, benchmark, seed, cycles)` — not on
/// the PVT corner or supply voltage, which are applied at query time — so
/// one bank serves Fig. 4 (both panels), Fig. 5, Table 1 (both corners)
/// and Fig. 10's original-bus side. `repro all` used to recollect the
/// identical set five times.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryBank {
    per: Vec<(Benchmark, TraceSummary)>,
    combined: TraceSummary,
}

/// Only the per-benchmark summaries are persisted; the merge is
/// recomputed on load (`combined` is derived state, and merging is
/// bit-exact integer/float addition in a fixed order).
impl serde::Serialize for SummaryBank {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut state = serializer.serialize_struct("SummaryBank", 1)?;
        state.serialize_field("per", &self.per)?;
        state.end()
    }
}

/// Validating deserialization: rebuilds the combined summary from the
/// persisted per-benchmark list, erroring (not panicking) when the list
/// is empty or the histograms disagree in shape.
impl<'de> serde::Deserialize<'de> for SummaryBank {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr {
            per: Vec<(Benchmark, TraceSummary)>,
        }
        use serde::de::Error;
        let Repr { per } = Repr::deserialize(deserializer)?;
        if per.is_empty() {
            return Err(D::Error::custom("summary bank with no benchmarks"));
        }
        // Every TraceSummary that deserialized successfully already has
        // the canonical histogram shape, so the merge cannot panic.
        Ok(Self::from_per_benchmark(per))
    }
}

impl SummaryBank {
    /// Collects all ten benchmarks (fanned out with scoped threads) and
    /// merges them.
    #[must_use]
    pub fn collect(design: &DvsBusDesign, cycles_per_benchmark: u64, seed: u64) -> Self {
        Self::from_per_benchmark(per_benchmark_summaries(design, cycles_per_benchmark, seed))
    }

    /// Builds a bank from already-collected per-benchmark summaries —
    /// e.g. the by-product of [`fig8::run_with_summaries`], which shares
    /// one trace pass between the closed loop and the sweep engine.
    ///
    /// # Panics
    ///
    /// Panics if `per` is empty.
    #[must_use]
    pub fn from_per_benchmark(per: Vec<(Benchmark, TraceSummary)>) -> Self {
        let mut iter = per.iter();
        let (_, first) = iter.next().expect("at least one benchmark");
        let mut combined = first.clone();
        for (_, s) in iter {
            combined.merge(s);
        }
        Self { per, combined }
    }

    /// Per-benchmark summaries in [`Benchmark::ALL`] order.
    #[must_use]
    pub fn per_benchmark(&self) -> &[(Benchmark, TraceSummary)] {
        &self.per
    }

    /// The all-programs merge (the "running all the benchmark programs"
    /// aggregation of Figs. 4/5).
    #[must_use]
    pub fn combined(&self) -> &TraceSummary {
        &self.combined
    }

    /// Consumes the bank, returning just the merged summary.
    #[must_use]
    pub fn into_combined(self) -> TraceSummary {
        self.combined
    }
}

/// Merges all ten benchmarks into one combined summary (the "running all
/// the benchmark programs" aggregation of Figs. 4/5).
#[must_use]
pub fn combined_summary(
    design: &DvsBusDesign,
    cycles_per_benchmark: u64,
    seed: u64,
) -> TraceSummary {
    SummaryBank::collect(design, cycles_per_benchmark, seed).into_combined()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_summary_spans_all_benchmarks() {
        let d = DvsBusDesign::paper_default();
        let s = combined_summary(&d, 2_000, 1);
        assert_eq!(s.cycles(), 20_000);
    }

    #[test]
    fn summary_bank_combined_matches_manual_merge() {
        let d = DvsBusDesign::paper_default();
        let bank = SummaryBank::collect(&d, 2_000, 3);
        assert_eq!(bank.per_benchmark().len(), Benchmark::ALL.len());
        let mut iter = bank.per_benchmark().iter();
        let mut merged = iter.next().unwrap().1.clone();
        for (_, s) in iter {
            merged.merge(s);
        }
        assert_eq!(bank.combined().cycles(), merged.cycles());
        let v = razorbus_units::Millivolts::new(900);
        let pvt = razorbus_process::PvtCorner::TYPICAL;
        assert_eq!(
            bank.combined().error_cycles(&d, pvt, v),
            merged.error_cycles(&d, pvt, v)
        );
    }
}
