//! Table 1: per-benchmark energy gains of fixed voltage scaling vs. the
//! proposed DVS scheme at the two headline corners.

use crate::design::DvsBusDesign;
use crate::experiments::{fig8, SummaryBank};
use razorbus_process::PvtCorner;
use razorbus_traces::Benchmark;
use razorbus_units::Millivolts;

/// One benchmark's row at one corner.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// The program.
    pub benchmark: Benchmark,
    /// Fixed-VS energy gain (zero-error guarantee), fraction.
    pub fixed_gain: f64,
    /// Proposed-DVS energy gain, fraction.
    pub dvs_gain: f64,
    /// Proposed-DVS average error rate, fraction.
    pub dvs_error_rate: f64,
}

/// Table 1 for one corner.
#[derive(Debug, Clone)]
pub struct Table1Corner {
    /// The corner.
    pub corner: PvtCorner,
    /// The fixed-VS supply used (same for every program).
    pub fixed_voltage: Millivolts,
    /// Per-program rows in Table 1 order.
    pub rows: Vec<Table1Row>,
    /// Totals row: combined fixed gain, DVS gain, DVS error rate.
    pub total: Table1Row,
}

/// The full table (both corners).
#[derive(Debug, Clone)]
pub struct Table1Data {
    /// (slow, 100 °C, 10 % IR) and (typical, 100 °C, no IR).
    pub corners: Vec<Table1Corner>,
}

/// Builds Table 1: fixed-VS gains from the per-benchmark summaries, DVS
/// gains from consecutive closed-loop runs (the Fig. 8 protocol).
///
/// Collects the summary bank once (it is corner-independent) and runs
/// one closed loop per corner; [`from_parts`] accepts those inputs
/// pre-collected when the caller (e.g. `repro all`) shares them with
/// other drivers.
#[must_use]
pub fn run(design: &DvsBusDesign, cycles_per_benchmark: u64, seed: u64) -> Table1Data {
    // The typical-corner closed loop doubles as the summary pass: same
    // trace words, one traversal.
    let (typical, per) =
        fig8::run_with_summaries(design, PvtCorner::TYPICAL, cycles_per_benchmark, seed);
    let bank = SummaryBank::from_per_benchmark(per);
    let worst = fig8::run(design, PvtCorner::WORST, cycles_per_benchmark, seed);
    from_parts(design, &bank, &worst, &typical)
}

/// Builds Table 1 from pre-collected inputs: the shared summary bank and
/// the two corners' consecutive closed-loop runs.
#[must_use]
pub fn from_parts(
    design: &DvsBusDesign,
    bank: &SummaryBank,
    worst_dvs: &fig8::Fig8Data,
    typical_dvs: &fig8::Fig8Data,
) -> Table1Data {
    let corners = [
        (PvtCorner::WORST, worst_dvs),
        (PvtCorner::TYPICAL, typical_dvs),
    ]
    .into_iter()
    .map(|(corner, dvs)| one_corner(design, corner, bank, dvs))
    .collect();
    Table1Data { corners }
}

fn one_corner(
    design: &DvsBusDesign,
    corner: PvtCorner,
    bank: &SummaryBank,
    dvs: &fig8::Fig8Data,
) -> Table1Corner {
    let fixed_v = design.fixed_vs_voltage(corner.process);
    let summaries = bank.per_benchmark();

    let mut rows = Vec::with_capacity(Benchmark::ALL.len());
    let mut total_fixed_e = 0.0;
    let mut total_fixed_base = 0.0;
    let mut total_dvs_e = 0.0;
    let mut total_dvs_base = 0.0;
    let mut total_errors = 0u64;
    let mut total_cycles = 0u64;
    for ((benchmark, summary), segment) in summaries.iter().zip(&dvs.segments) {
        assert_eq!(*benchmark, segment.benchmark, "order mismatch");
        // Fixed VS guarantees zero errors, so no recovery term.
        let base = summary.energy(design, corner, design.nominal(), false);
        let at_fixed = summary.energy(design, corner, fixed_v, false);
        debug_assert_eq!(
            summary.error_cycles(design, corner, fixed_v),
            0,
            "fixed VS must be error-free"
        );
        let fixed_gain = 1.0 - at_fixed / base;
        total_fixed_e += at_fixed.fj();
        total_fixed_base += base.fj();

        let r = &segment.report;
        total_dvs_e += r.energy.fj();
        total_dvs_base += r.baseline_energy.fj();
        total_errors += r.errors;
        total_cycles += r.cycles;
        rows.push(Table1Row {
            benchmark: *benchmark,
            fixed_gain,
            dvs_gain: r.energy_gain(),
            dvs_error_rate: r.error_rate(),
        });
    }
    let total = Table1Row {
        benchmark: Benchmark::Crafty, // placeholder; totals carry no program
        fixed_gain: 1.0 - total_fixed_e / total_fixed_base,
        dvs_gain: 1.0 - total_dvs_e / total_dvs_base,
        dvs_error_rate: total_errors as f64 / total_cycles as f64,
    };
    Table1Corner {
        corner,
        fixed_voltage: fixed_v,
        rows,
        total,
    }
}

impl Table1Data {
    /// Prints the table in the paper's layout.
    pub fn print(&self) {
        println!("Table 1 — energy gains with the two voltage-scaling schemes");
        for c in &self.corners {
            println!(
                "\n  {}  (fixed VS supply: {} mV)",
                c.corner,
                c.fixed_voltage.mv()
            );
            println!(
                "  {:<12} {:>14} {:>12} {:>14}",
                "benchmark", "fixed VS gain", "DVS gain", "DVS err rate"
            );
            for (i, r) in c.rows.iter().enumerate() {
                println!(
                    "  {:>2}. {:<9} {:>13.1}% {:>11.1}% {:>13.2}%",
                    i + 1,
                    r.benchmark.name(),
                    r.fixed_gain * 100.0,
                    r.dvs_gain * 100.0,
                    r.dvs_error_rate * 100.0
                );
            }
            println!(
                "  {:<13} {:>13.1}% {:>11.1}% {:>13.2}%",
                "Total",
                c.total.fixed_gain * 100.0,
                c.total.dvs_gain * 100.0,
                c.total.dvs_error_rate * 100.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_structure() {
        let d = DvsBusDesign::paper_default();
        let t = run(&d, 40_000, 2);
        assert_eq!(t.corners.len(), 2);
        let worst = &t.corners[0];
        let typical = &t.corners[1];

        // Worst corner: fixed VS gains exactly zero (supply stays 1.2 V).
        assert_eq!(worst.fixed_voltage, Millivolts::new(1_200));
        for r in &worst.rows {
            assert!(r.fixed_gain.abs() < 1e-9);
        }
        // Typical corner: fixed VS gains are real but uniform-ish.
        assert!(typical.fixed_voltage < Millivolts::new(1_200));
        for r in &typical.rows {
            assert!(r.fixed_gain > 0.10, "{:?}", r);
        }
        // DVS beats fixed VS on total at both corners.
        for c in &t.corners {
            assert!(
                c.total.dvs_gain > c.total.fixed_gain,
                "{}: DVS {} vs fixed {}",
                c.corner,
                c.total.dvs_gain,
                c.total.fixed_gain
            );
        }
        // Typical-corner DVS gains dwarf worst-corner DVS gains.
        assert!(typical.total.dvs_gain > worst.total.dvs_gain + 0.10);
    }
}
