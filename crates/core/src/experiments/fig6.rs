//! Fig. 6: distribution of the *optimal* (oracle) supply voltage over
//! time for three programs at fixed target error rates, typical corner.

use crate::design::DvsBusDesign;
use crate::summary::WindowedSummary;
use razorbus_process::PvtCorner;
use razorbus_traces::Benchmark;
use razorbus_units::Millivolts;

/// The programs the paper plots.
pub const PROGRAMS: [Benchmark; 3] = [Benchmark::Crafty, Benchmark::Vortex, Benchmark::Mgrid];

/// The two target error rates of the figure's panels.
pub const TARGETS: [f64; 2] = [0.02, 0.05];

/// One (program, target) residency histogram.
#[derive(Debug, Clone)]
pub struct Fig6Entry {
    /// Program.
    pub benchmark: Benchmark,
    /// Target error rate for the oracle.
    pub target: f64,
    /// (voltage, fraction of time) pairs, ascending voltage.
    pub residency: Vec<(Millivolts, f64)>,
}

impl Fig6Entry {
    /// Time-weighted mean voltage.
    #[must_use]
    pub fn mean_voltage_mv(&self) -> f64 {
        self.residency
            .iter()
            .map(|(v, f)| f64::from(v.mv()) * f)
            .sum()
    }

    /// The modal (most-visited) voltage.
    ///
    /// # Panics
    ///
    /// Panics if the residency is empty (cannot happen for a collected
    /// entry).
    #[must_use]
    pub fn mode_voltage(&self) -> Millivolts {
        self.residency
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty residency")
            .0
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// The analyzed corner (typical process, 100 °C, no IR in the paper).
    pub corner: PvtCorner,
    /// One entry per (program, target).
    pub entries: Vec<Fig6Entry>,
}

/// Runs the oracle analysis: `windows` windows of `window_len` cycles per
/// program.
#[must_use]
pub fn run(design: &DvsBusDesign, windows: usize, window_len: u64, seed: u64) -> Fig6Data {
    let corner = PvtCorner::TYPICAL;
    let entries = std::thread::scope(|scope| {
        let handles: Vec<_> = PROGRAMS
            .iter()
            .map(|&benchmark| {
                scope.spawn(move || {
                    let mut trace = benchmark.trace(seed);
                    let w = WindowedSummary::collect(design, &mut trace, windows, window_len);
                    TARGETS
                        .iter()
                        .map(|&target| Fig6Entry {
                            benchmark,
                            target,
                            residency: w.oracle_residency(design, corner, target),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fig6 worker"))
            .collect()
    });
    Fig6Data { corner, entries }
}

impl Fig6Data {
    /// Prints both panels.
    pub fn print(&self) {
        println!("Fig. 6 — optimal supply residency ({})", self.corner);
        for &target in &TARGETS {
            println!("  target error rate {:.0}%:", target * 100.0);
            for e in self.entries.iter().filter(|e| e.target == target) {
                let cells: Vec<String> = e
                    .residency
                    .iter()
                    .map(|(v, f)| format!("{}:{:.0}%", v.mv(), f * 100.0))
                    .collect();
                println!("    {:<8} {}", e.benchmark.name(), cells.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_program_separation() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, 12, 5_000, 3);
        assert_eq!(data.entries.len(), 6);
        let mean = |b: Benchmark, t: f64| {
            data.entries
                .iter()
                .find(|e| e.benchmark == b && e.target == t)
                .unwrap()
                .mean_voltage_mv()
        };
        // The paper's separation: crafty runs well below mgrid at 2%.
        assert!(
            mean(Benchmark::Crafty, 0.02) + 20.0 < mean(Benchmark::Mgrid, 0.02),
            "crafty {} vs mgrid {}",
            mean(Benchmark::Crafty, 0.02),
            mean(Benchmark::Mgrid, 0.02)
        );
        // Looser target never raises the mean voltage.
        for b in PROGRAMS {
            assert!(mean(b, 0.05) <= mean(b, 0.02) + 1e-9, "{b}");
        }
    }

    #[test]
    fn residency_fractions_are_distributions() {
        let d = DvsBusDesign::paper_default();
        let data = run(&d, 8, 4_000, 9);
        for e in &data.entries {
            let total: f64 = e.residency.iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9, "{e:?}");
            assert!(!e.residency.is_empty());
            let _ = e.mode_voltage();
        }
    }
}
