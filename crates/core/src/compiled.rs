//! Compiled traces: the governor-independent part of a closed-loop run,
//! computed once and replayed everywhere.
//!
//! The paper's evaluation is one trace under many operating points — the
//! same benchmark words are re-judged under different supplies, corners
//! and controllers. But the *physical* classification of a cycle (how
//! many wires toggle, the worst Miller-weighted load, the switched
//! capacitance) depends only on the bus and the words, never on the
//! governor or the supply. [`CompiledTrace`] captures exactly that: a
//! struct-of-arrays stream of per-cycle `(toggle count, quantized load
//! bin, switched capacitance)` tuples — everything the simulator's hot
//! loop consumes — so a sweep over N governors/corners pays the
//! `analyze_cycle` cost once instead of N times.
//!
//! Replaying a compiled trace (`CompiledTrace::replay`, in `sim.rs`) is
//! **bit-identical** to simulating the original words: the replay path
//! shares the simulator's chunked loop verbatim, reading stored tuples
//! where the live path calls `analyze_cycle`. Errors and violations
//! match bitwise, energies are exact (same per-cycle add sequence) —
//! pinned by differential tests across governors × corners.
//!
//! Compiled traces persist through `razorbus-artifact` as the
//! `compiled-trace` kind; the embedded bus stamps refuse replay against
//! a design the trace was not compiled for (see [`CompiledTrace::matches`]).

use crate::design::DvsBusDesign;
use crate::summary::{bin_of, bucket_of, N_BUCKETS, N_CEFF_BINS};
use razorbus_traces::TraceSource;
use razorbus_wire::CycleAnalysis;
use std::sync::Mutex;

/// Default cycles per parallel-compile chunk.
const DEFAULT_COMPILE_CHUNK: usize = 65_536;

/// Cycles per chunk for the parallel compile pipeline
/// (`RAZORBUS_COMPILE_CHUNK`, default 64k). Each chunk is one
/// independent analysis sub-job; smaller chunks expose more parallelism
/// at more per-chunk overhead.
#[must_use]
pub fn compile_chunk_cycles() -> usize {
    std::env::var("RAZORBUS_COMPILE_CHUNK")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_COMPILE_CHUNK)
}

/// Executes the independent per-chunk analysis jobs of a parallel
/// compile ([`CompiledTrace::compile_with`]). `razorbus-core` stays
/// thread-pool-free: callers inject whatever execution resource they
/// have — [`SerialChunks`] here, the scenario executor's work-stealing
/// pool downstream.
pub trait ChunkRunner {
    /// Runs every job exactly once, in any order, possibly
    /// concurrently, returning only after all of them finish. Jobs may
    /// borrow from the caller's stack, so implementations must not
    /// outlive the call (scoped threads are fine, detached ones are
    /// not).
    fn run_chunks<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>);

    /// Whether this runner executes chunk jobs strictly one at a time
    /// on the calling thread. An opt-in fast-path hint:
    /// [`CompiledTrace::compile_chunked`] gains nothing from the
    /// drain-then-chunk pipeline on a single-threaded runner, so it
    /// routes to the streaming single-pass [`CompiledTrace::compile`]
    /// instead (bit-identical — pinned by the chunk differentials).
    /// [`SerialChunks`] deliberately keeps the default `false`: its job
    /// is exercising the chunk pipeline itself in tests.
    fn single_threaded(&self) -> bool {
        false
    }
}

/// The no-parallelism [`ChunkRunner`]: runs chunk jobs in order on the
/// calling thread.
pub struct SerialChunks;

impl ChunkRunner for SerialChunks {
    fn run_chunks<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        for job in jobs {
            job();
        }
    }
}

/// The classification of one contiguous cycle range, produced by
/// [`CompiledTrace::analyze_chunk`] and assembled slot-ordered by
/// [`CompiledTrace::from_chunks`]. Opaque on purpose: the only valid
/// use is handing it back to `from_chunks` in cycle order.
#[derive(Debug)]
pub struct CompiledChunk {
    toggles: Vec<u8>,
    bins: Vec<u16>,
    switched: Vec<f64>,
}

impl CompiledChunk {
    /// Cycles classified in this chunk.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.toggles.len()
    }
}

/// A trace compiled against one bus design: per-cycle physical
/// classification, ready to replay under any governor/corner/supply.
///
/// ```
/// use razorbus_core::{CompiledTrace, DvsBusDesign};
/// use razorbus_ctrl::FixedVoltage;
/// use razorbus_process::PvtCorner;
/// use razorbus_traces::Benchmark;
/// use razorbus_units::Millivolts;
///
/// let design = DvsBusDesign::paper_default();
/// let compiled = CompiledTrace::compile(&design, &mut Benchmark::Crafty.trace(7), 5_000);
/// // One compile, any number of replays — here two supplies.
/// let (hi, _) = compiled.replay(
///     &design, PvtCorner::TYPICAL, FixedVoltage::new(Millivolts::new(1_200)), None, false);
/// let (lo, _) = compiled.replay(
///     &design, PvtCorner::TYPICAL, FixedVoltage::new(Millivolts::new(900)), None, false);
/// assert_eq!(hi.errors, 0);
/// assert!(lo.energy < hi.energy);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CompiledTrace {
    /// Cycles compiled (each array below holds exactly this many).
    cycles: u64,
    /// Per-cycle toggle counts (the bus is ≤32 bits wide).
    toggles: Vec<u8>,
    /// Per-cycle quantized worst-load bins (`bin_of(worst_ceff_per_mm)`),
    /// the value the error comparison consumes.
    bins: Vec<u16>,
    /// Per-cycle charge-weighted switched capacitance (fF/mm), bit-exact.
    switched: Vec<f64>,
    /// Stamp: bus width the trace was compiled against.
    n_bits: u32,
    /// Stamp: the bus's worst-case Miller-weighted load (fF/mm).
    worst_load_ff: f64,
    /// Stamp: the bus's best-case load (fF/mm).
    best_load_ff: f64,
    /// Stamp: the parasitics' coupling ratio (distinguishes the §6
    /// boosted-coupling bus from the paper bus).
    coupling_ratio: f64,
}

/// Validating deserialization: a compiled trace read back from an
/// artifact must hold arrays of consistent length, in-range toggle
/// counts and bins, and finite capacitances — corrupt cache files error
/// instead of panicking (or silently mis-simulating) mid-replay.
impl<'de> serde::Deserialize<'de> for CompiledTrace {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr {
            cycles: u64,
            toggles: Vec<u8>,
            bins: Vec<u16>,
            switched: Vec<f64>,
            n_bits: u32,
            worst_load_ff: f64,
            best_load_ff: f64,
            coupling_ratio: f64,
        }
        use serde::de::Error;
        let r = Repr::deserialize(deserializer)?;
        if r.cycles == 0 {
            return Err(D::Error::custom("compiled trace over zero cycles"));
        }
        let n = usize::try_from(r.cycles)
            .map_err(|_| D::Error::custom("compiled trace cycle count overflows this platform"))?;
        if r.toggles.len() != n || r.bins.len() != n || r.switched.len() != n {
            return Err(D::Error::custom(format!(
                "compiled trace arrays disagree with the cycle count: \
                 {} toggles / {} bins / {} switched for {} cycles",
                r.toggles.len(),
                r.bins.len(),
                r.switched.len(),
                r.cycles
            )));
        }
        if !(1..=32).contains(&r.n_bits) {
            return Err(D::Error::custom(format!(
                "compiled trace claims a {}-bit bus",
                r.n_bits
            )));
        }
        if let Some(t) = r.toggles.iter().find(|&&t| u32::from(t) > r.n_bits) {
            return Err(D::Error::custom(format!(
                "toggle count {t} exceeds the {}-bit bus width",
                r.n_bits
            )));
        }
        if let Some(b) = r.bins.iter().find(|&&b| usize::from(b) >= N_CEFF_BINS) {
            return Err(D::Error::custom(format!(
                "load bin {b} outside the {N_CEFF_BINS}-bin histogram range"
            )));
        }
        if r.switched.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(D::Error::custom(
                "non-finite or negative switched capacitance",
            ));
        }
        // A quiet cycle classifies to exactly (bin 0, 0 fF/mm); a
        // CRC-clean payload claiming otherwise would silently skew
        // replayed energy or error counts, so it errors here.
        for c in 0..r.toggles.len() {
            if r.toggles[c] == 0 && (r.bins[c] != 0 || r.switched[c] != 0.0) {
                return Err(D::Error::custom(format!(
                    "cycle {c} toggles no wire but carries load bin {} and {} fF/mm",
                    r.bins[c], r.switched[c]
                )));
            }
        }
        for (name, v) in [
            ("worst_load_ff", r.worst_load_ff),
            ("best_load_ff", r.best_load_ff),
            ("coupling_ratio", r.coupling_ratio),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(D::Error::custom(format!("bad bus stamp {name}: {v}")));
            }
        }
        Ok(Self {
            cycles: r.cycles,
            toggles: r.toggles,
            bins: r.bins,
            switched: r.switched,
            n_bits: r.n_bits,
            worst_load_ff: r.worst_load_ff,
            best_load_ff: r.best_load_ff,
            coupling_ratio: r.coupling_ratio,
        })
    }
}

impl CompiledTrace {
    /// Drains `cycles` words from `trace` through `design`'s bus —
    /// exactly the word protocol of [`crate::BusSimulator::new`] (the
    /// first word primes `prev`) — and records each cycle's
    /// classification.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn compile<S: TraceSource>(design: &DvsBusDesign, trace: &mut S, cycles: u64) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let mut analyzer = design.bus().analyzer();
        let n = usize::try_from(cycles).expect("cycle count fits in memory");
        let mut toggles = Vec::with_capacity(n);
        let mut bins = Vec::with_capacity(n);
        let mut switched = Vec::with_capacity(n);
        let mut prev = trace.next_word();
        for _ in 0..cycles {
            let cur = trace.next_word();
            let a = analyzer.analyze(prev, cur);
            prev = cur;
            let (t, b, s) = classify(&a);
            toggles.push(t);
            bins.push(b);
            switched.push(s);
        }
        Self::from_arrays(design, cycles, toggles, bins, switched)
    }

    /// Parallel compile with the chunk size from
    /// [`compile_chunk_cycles`] (`RAZORBUS_COMPILE_CHUNK`): drains the
    /// trace serially (RNG streams stay sequential, so seeds produce
    /// the same words), then classifies fixed-size cycle chunks as
    /// independent jobs on `runner`. Bit-identical to
    /// [`CompiledTrace::compile`] for every chunk size and runner —
    /// each cycle's classification is a pure function of its
    /// `(prev, cur)` word pair, and assembly preserves cycle order —
    /// pinned by differential and property tests.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn compile_with<S: TraceSource>(
        design: &DvsBusDesign,
        trace: &mut S,
        cycles: u64,
        runner: &dyn ChunkRunner,
    ) -> Self {
        Self::compile_chunked(design, trace, cycles, compile_chunk_cycles(), runner)
    }

    /// [`CompiledTrace::compile_with`] with an explicit chunk size —
    /// the testing/benching entry point (no env coupling).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` or `chunk_cycles == 0`.
    #[must_use]
    pub fn compile_chunked<S: TraceSource>(
        design: &DvsBusDesign,
        trace: &mut S,
        cycles: u64,
        chunk_cycles: usize,
        runner: &dyn ChunkRunner,
    ) -> Self {
        assert!(chunk_cycles > 0, "need at least one cycle per chunk");
        if runner.single_threaded() {
            // No parallelism to exploit: skip the word buffer and chunk
            // bookkeeping entirely and stream the compile in one pass.
            return Self::compile(design, trace, cycles);
        }
        let words = Self::drain_words(trace, cycles);
        let n = words.len() - 1;
        let n_chunks = n.div_ceil(chunk_cycles);
        let slots: Vec<Mutex<Option<CompiledChunk>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n_chunks)
            .map(|k| {
                let start = k * chunk_cycles;
                let len = chunk_cycles.min(n - start);
                let words = &words;
                let slot = &slots[k];
                Box::new(move || {
                    let chunk = Self::analyze_chunk(design, words, start, len);
                    *slot.lock().expect("chunk slot poisoned") = Some(chunk);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        runner.run_chunks(jobs);
        let chunks = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("chunk slot poisoned")
                    .expect("runner dropped a chunk job")
            })
            .collect();
        Self::from_chunks(design, cycles, chunks)
    }

    /// Phase one of the parallel compile: drains `cycles + 1` words
    /// from `trace` — the priming `prev` word plus one per cycle,
    /// exactly the word protocol of [`CompiledTrace::compile`] — into a
    /// buffer the analysis chunks index into (`words[c]`/`words[c + 1]`
    /// are cycle `c`'s `(prev, cur)` pair).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn drain_words<S: TraceSource>(trace: &mut S, cycles: u64) -> Vec<u32> {
        assert!(cycles > 0, "need at least one cycle");
        let n = usize::try_from(cycles).expect("cycle count fits in memory");
        let mut words = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            words.push(trace.next_word());
        }
        words
    }

    /// Phase two of the parallel compile: classifies the `len` cycles
    /// starting at `start` against `design`'s bus. Pure in
    /// `(design, words, start, len)` — safe to run chunks in any order
    /// on any thread. Each chunk gets its own residual-fold memo
    /// (results are memo-invariant, so chunk boundaries cannot show).
    ///
    /// # Panics
    ///
    /// Panics if `start + len + 1 > words.len()`.
    #[must_use]
    pub fn analyze_chunk(
        design: &DvsBusDesign,
        words: &[u32],
        start: usize,
        len: usize,
    ) -> CompiledChunk {
        let mut analyzer = design.bus().analyzer();
        let mut toggles = Vec::with_capacity(len);
        let mut bins = Vec::with_capacity(len);
        let mut switched = Vec::with_capacity(len);
        for c in start..start + len {
            let a = analyzer.analyze(words[c], words[c + 1]);
            let (t, b, s) = classify(&a);
            toggles.push(t);
            bins.push(b);
            switched.push(s);
        }
        CompiledChunk {
            toggles,
            bins,
            switched,
        }
    }

    /// Final phase of the parallel compile: concatenates slot-ordered
    /// chunks into the struct-of-arrays layout. `chunks` must cover
    /// exactly `cycles` cycles in cycle order.
    ///
    /// # Panics
    ///
    /// Panics if the chunks' cycle counts do not sum to `cycles`.
    #[must_use]
    pub fn from_chunks(design: &DvsBusDesign, cycles: u64, chunks: Vec<CompiledChunk>) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let n = usize::try_from(cycles).expect("cycle count fits in memory");
        let mut toggles = Vec::with_capacity(n);
        let mut bins = Vec::with_capacity(n);
        let mut switched = Vec::with_capacity(n);
        for c in chunks {
            toggles.extend_from_slice(&c.toggles);
            bins.extend_from_slice(&c.bins);
            switched.extend_from_slice(&c.switched);
        }
        assert_eq!(
            toggles.len(),
            n,
            "assembled chunks do not cover the cycle count"
        );
        Self::from_arrays(design, cycles, toggles, bins, switched)
    }

    fn from_arrays(
        design: &DvsBusDesign,
        cycles: u64,
        toggles: Vec<u8>,
        bins: Vec<u16>,
        switched: Vec<f64>,
    ) -> Self {
        Self {
            cycles,
            toggles,
            bins,
            switched,
            n_bits: design.bus().layout().n_bits() as u32,
            worst_load_ff: design.bus().worst_effective_cap_per_mm().ff(),
            best_load_ff: design.bus().best_effective_cap_per_mm().ff(),
            coupling_ratio: design.bus().parasitics().coupling_ratio(),
        }
    }

    /// Cycles compiled.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Checks the embedded bus stamps against `design` — a compiled
    /// trace must only ever replay against the design it was compiled
    /// for (the load bins and switched capacitances are functions of the
    /// bus parasitics and coupling model).
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching stamp.
    pub fn matches(&self, design: &DvsBusDesign) -> Result<(), String> {
        let bus = design.bus();
        if self.n_bits != bus.layout().n_bits() as u32 {
            return Err(format!(
                "compiled trace is for a {}-bit bus, design has {} bits",
                self.n_bits,
                bus.layout().n_bits()
            ));
        }
        let checks = [
            (
                "worst-case load",
                self.worst_load_ff,
                bus.worst_effective_cap_per_mm().ff(),
            ),
            (
                "best-case load",
                self.best_load_ff,
                bus.best_effective_cap_per_mm().ff(),
            ),
            (
                "coupling ratio",
                self.coupling_ratio,
                bus.parasitics().coupling_ratio(),
            ),
        ];
        for (name, stamped, actual) in checks {
            if stamped != actual {
                return Err(format!(
                    "compiled trace {name} stamp {stamped} does not match the design's {actual}"
                ));
            }
        }
        Ok(())
    }

    /// The sweep-engine histogram of the compiled stream — bit-identical
    /// to [`crate::TraceSummary::collect`] over the same words (same
    /// per-cycle accumulation in the same order), without touching the
    /// bus again.
    #[must_use]
    pub fn summary(&self) -> crate::TraceSummary {
        let mut hist = vec![0u64; N_BUCKETS * N_CEFF_BINS];
        let mut total_cap = 0.0f64;
        let mut total_toggles = 0u64;
        for c in 0..self.toggles.len() {
            let t = u32::from(self.toggles[c]);
            if t == 0 {
                continue;
            }
            hist[bucket_of(t) * N_CEFF_BINS + usize::from(self.bins[c])] += 1;
            total_cap += self.switched[c];
            total_toggles += u64::from(t);
        }
        crate::TraceSummary::from_parts(hist, total_cap, total_toggles, self.cycles)
    }

    /// Per-cycle tuple access for the scalar replay loop in `sim.rs`.
    #[inline]
    pub(crate) fn cycle(&self, c: usize) -> (u32, usize, f64) {
        (
            u32::from(self.toggles[c]),
            usize::from(self.bins[c]),
            self.switched[c],
        )
    }

    /// The raw struct-of-arrays view the lane-vectorized replay path
    /// consumes directly (`sim.rs`): per-cycle toggle counts, load bins
    /// and switched capacitances, all exactly [`CompiledTrace::cycles`]
    /// long.
    #[inline]
    pub(crate) fn arrays(&self) -> (&[u8], &[u16], &[f64]) {
        (&self.toggles, &self.bins, &self.switched)
    }

    /// Approximate resident size (bytes) of the compiled arrays — lets
    /// planners reason about memory before compiling long traces.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.toggles.len()
            + self.bins.len() * core::mem::size_of::<u16>()
            + self.switched.len() * core::mem::size_of::<f64>()
    }
}

/// One cycle's analysis as the stored tuple. The narrowings are
/// checked: a bus wider than `u8::MAX` wires or a histogram wider than
/// `u16::MAX` bins must fail loudly here, not wrap into silently wrong
/// replay results.
fn classify(a: &CycleAnalysis) -> (u8, u16, f64) {
    let t = u8::try_from(a.toggled_wires)
        .expect("toggle count exceeds u8 — compiled layout caps the bus at 255 wires");
    let bin = bin_of(a.worst_ceff_per_mm);
    debug_assert!(bin < N_CEFF_BINS, "bin_of broke its {N_CEFF_BINS} bound");
    let b = u16::try_from(bin)
        .expect("load bin exceeds u16 — compiled layout caps N_CEFF_BINS at 65_535");
    (t, b, a.switched_cap_per_mm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use razorbus_traces::Benchmark;

    #[test]
    fn chunked_compile_matches_serial_bitwise() {
        // The parallel pipeline's contract: any chunk size — one cycle
        // per chunk, a prime that never divides the cycle count, the
        // default, larger than the whole trace — assembles to exactly
        // the serial compile, across designs and generator families
        // (benchmark mixtures, adversarial storm traffic, uniform
        // random). PartialEq covers every array element and stamp.
        let cycles = 4_096u64;
        for design in [
            DvsBusDesign::paper_default(),
            DvsBusDesign::modified_paper_bus(),
        ] {
            for chunk in [1usize, 7, 65_536, 5_000] {
                let serial = CompiledTrace::compile(&design, &mut Benchmark::Gap.trace(11), cycles);
                let chunked = CompiledTrace::compile_chunked(
                    &design,
                    &mut Benchmark::Gap.trace(11),
                    cycles,
                    chunk,
                    &SerialChunks,
                );
                assert_eq!(serial, chunked, "Gap, chunk {chunk}");

                let serial = CompiledTrace::compile(
                    &design,
                    &mut razorbus_traces::AdversarialCrosstalk::new(5, 0.9),
                    cycles,
                );
                let chunked = CompiledTrace::compile_chunked(
                    &design,
                    &mut razorbus_traces::AdversarialCrosstalk::new(5, 0.9),
                    cycles,
                    chunk,
                    &SerialChunks,
                );
                assert_eq!(serial, chunked, "storm, chunk {chunk}");

                let serial = CompiledTrace::compile(
                    &design,
                    &mut razorbus_traces::RandomWords::new(17),
                    cycles,
                );
                let chunked = CompiledTrace::compile_chunked(
                    &design,
                    &mut razorbus_traces::RandomWords::new(17),
                    cycles,
                    chunk,
                    &SerialChunks,
                );
                assert_eq!(serial, chunked, "random, chunk {chunk}");
            }
        }
    }

    #[test]
    fn compile_with_reads_the_chunk_knob_default() {
        // compile_with (env-default chunk size) must agree with serial
        // compile like every other chunking.
        let d = DvsBusDesign::paper_default();
        let serial = CompiledTrace::compile(&d, &mut Benchmark::Swim.trace(9), 3_000);
        let auto =
            CompiledTrace::compile_with(&d, &mut Benchmark::Swim.trace(9), 3_000, &SerialChunks);
        assert_eq!(serial, auto);
    }

    #[test]
    fn drain_words_primes_prev_like_the_serial_path() {
        // words[0] primes prev; each cycle c reads (words[c], words[c+1]).
        let words = CompiledTrace::drain_words(&mut Benchmark::Mcf.trace(3), 100);
        assert_eq!(words.len(), 101);
        let mut t = Benchmark::Mcf.trace(3);
        for (c, &w) in words.iter().enumerate() {
            assert_eq!(w, t.next_word(), "word {c}");
        }
    }

    #[test]
    fn summary_matches_collect_bitwise() {
        let d = DvsBusDesign::paper_default();
        let compiled = CompiledTrace::compile(&d, &mut Benchmark::Swim.trace(3), 20_000);
        let collected = crate::TraceSummary::collect(&d, &mut Benchmark::Swim.trace(3), 20_000);
        assert_eq!(compiled.summary(), collected);
    }

    #[test]
    fn stamps_refuse_the_wrong_design() {
        let d = DvsBusDesign::paper_default();
        let modified = DvsBusDesign::modified_paper_bus();
        let compiled = CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(1), 1_000);
        assert!(compiled.matches(&d).is_ok());
        let err = compiled.matches(&modified).unwrap_err();
        assert!(err.contains("stamp"), "{err}");
    }

    #[test]
    fn memory_estimate_tracks_cycles() {
        let d = DvsBusDesign::paper_default();
        let compiled = CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(1), 1_000);
        assert_eq!(compiled.cycles(), 1_000);
        assert_eq!(compiled.memory_bytes(), 1_000 * (1 + 2 + 8));
    }
}
