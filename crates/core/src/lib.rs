//! Cycle-level DVS bus simulator and paper-experiment drivers — the top
//! of the razorbus stack, reproducing Kaul et al., *"DVS for On-Chip Bus
//! Designs Based on Timing Error Correction"* (DATE 2005).
//!
//! * [`DvsBusDesign`] — the complete design object: the physical bus
//!   (`razorbus-wire`), its hold-analyzed shadow skew (`razorbus-ff`),
//!   the SPICE-style tables (`razorbus-tables`) and the flop energy
//!   model, assembled per the paper's §2–§3 recipe.
//! * [`BusSimulator`] — streaming closed-loop simulation: trace in,
//!   per-cycle error/energy out, any [`razorbus_ctrl::VoltageGovernor`]
//!   in the loop.
//! * [`TraceSummary`] / [`WindowedSummary`] — compact per-trace
//!   histograms that make whole voltage sweeps O(1) per grid point
//!   (the same trick as the paper's per-pattern tables).
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation (Fig. 4, 5, 6, 8, 10, Table 1, and the §6 scaling
//!   study), each returning printable structured data.
//!
//! # Quickstart
//!
//! ```
//! use razorbus_core::{BusSimulator, DvsBusDesign};
//! use razorbus_ctrl::{ThresholdController, VoltageGovernor};
//! use razorbus_process::PvtCorner;
//! use razorbus_traces::Benchmark;
//!
//! let design = DvsBusDesign::paper_default();
//! let controller = ThresholdController::new(design.controller_config(PvtCorner::TYPICAL.process));
//! let mut sim = BusSimulator::new(&design, PvtCorner::TYPICAL,
//!                                 Benchmark::Crafty.trace(42), controller);
//! let report = sim.run(200_000);
//! assert!(report.error_rate() < 0.05);
//! assert!(report.energy_gain() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod design;
pub mod experiments;
mod lane;
mod sim;
mod summary;

pub use compiled::{compile_chunk_cycles, ChunkRunner, CompiledChunk, CompiledTrace, SerialChunks};
pub use design::DvsBusDesign;
pub use sim::{BusSimulator, FusedOp, SimReport, VoltageSample};
pub use summary::{
    bucket_of, TraceSummary, WindowedSummary, CEFF_BIN_WIDTH, N_BUCKETS, N_CEFF_BINS,
};
