//! Compact per-trace summaries: the sweep engine.
//!
//! The paper's methodology tabulates per-pattern delay/energy once and
//! then replays traces against the tables. We compress further: a trace's
//! entire interaction with the timing model is captured by a 2-D
//! histogram over (activity bucket, worst-wire effective capacitance) — a
//! few kilobytes — after which evaluating *any* supply voltage, corner or
//! target error rate is a table walk, independent of trace length.

use crate::design::DvsBusDesign;
use razorbus_process::PvtCorner;
use razorbus_tables::EnvCondition;
use razorbus_traces::TraceSource;
use razorbus_units::Femtojoules;

/// Width of one effective-capacitance histogram bin (fF/mm).
pub const CEFF_BIN_WIDTH: f64 = 1.0;
/// Number of capacitance bins (covers 0 – 512 fF/mm, beyond any load the
/// paper bus can present).
pub const N_CEFF_BINS: usize = 512;
/// Activity buckets (must match the threshold matrix). Also the bucket
/// count of every fixed-range campaign-digest histogram in
/// `razorbus-scenario`, which quantizes through [`bucket_of`] so the
/// whole stack shares one bucketing rule.
pub const N_BUCKETS: usize = 9;

#[inline]
pub(crate) fn bin_of(ceff: f64) -> usize {
    ((ceff / CEFF_BIN_WIDTH) as usize).min(N_CEFF_BINS - 1)
}

/// Activity bucket of a cycle's toggle count — the single quantization
/// rule shared by the histogram engine ([`TraceSummary::collect`]), the
/// streaming simulator's hot loops, the compiled-trace replay path and
/// the scenario layer's campaign-digest histograms, so none of them can
/// drift apart. The unit is a *quarter step*: four consecutive units
/// per bucket, everything past the last edge clamped into the top
/// bucket.
#[inline]
#[must_use]
pub fn bucket_of(toggled_wires: u32) -> usize {
    ((toggled_wires / 4) as usize).min(N_BUCKETS - 1)
}

/// Lower edge (fF/mm) of the histogram bin containing `ceff` — the
/// quantized load both the histogram engine and the streaming simulator
/// compare against pass limits, keeping them in exact agreement.
#[inline]
#[must_use]
pub(crate) fn ceff_bin_floor(ceff: f64) -> f64 {
    bin_of(ceff) as f64 * CEFF_BIN_WIDTH
}

/// Whole-trace histogram summary.
///
/// ```
/// use razorbus_core::{DvsBusDesign, TraceSummary};
/// use razorbus_process::PvtCorner;
/// use razorbus_traces::Benchmark;
/// use razorbus_units::Millivolts;
///
/// let design = DvsBusDesign::paper_default();
/// let summary = TraceSummary::collect(&design, &mut Benchmark::Crafty.trace(1), 50_000);
/// // At nominal supply the typical corner is error-free.
/// let rate = summary.error_rate(&design, PvtCorner::TYPICAL, Millivolts::new(1_200));
/// assert_eq!(rate, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceSummary {
    /// `hist[bucket * N_CEFF_BINS + bin]` — cycles by (activity, load).
    hist: Vec<u64>,
    /// Sum over cycles of charge-weighted switched capacitance (fF/mm).
    total_switched_cap_per_mm: f64,
    /// Total wire toggles.
    total_toggles: u64,
    cycles: u64,
}

/// Validating deserialization: a summary read back from an artifact must
/// hold the exact histogram shape every query method indexes into, at
/// least one cycle, and a finite capacitance sum — corrupt cache files
/// error instead of panicking mid-sweep.
impl<'de> serde::Deserialize<'de> for TraceSummary {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr {
            hist: Vec<u64>,
            total_switched_cap_per_mm: f64,
            total_toggles: u64,
            cycles: u64,
        }
        use serde::de::Error;
        let Repr {
            hist,
            total_switched_cap_per_mm,
            total_toggles,
            cycles,
        } = Repr::deserialize(deserializer)?;
        if hist.len() != N_BUCKETS * N_CEFF_BINS {
            return Err(D::Error::custom(format!(
                "summary histogram shape mismatch: {} bins, expected {}",
                hist.len(),
                N_BUCKETS * N_CEFF_BINS
            )));
        }
        if cycles == 0 {
            return Err(D::Error::custom("summary over zero cycles"));
        }
        if !total_switched_cap_per_mm.is_finite() {
            return Err(D::Error::custom("non-finite switched capacitance"));
        }
        Ok(Self {
            hist,
            total_switched_cap_per_mm,
            total_toggles,
            cycles,
        })
    }
}

impl TraceSummary {
    /// Drains `cycles` words from `trace` through `design`'s bus and
    /// accumulates the histogram.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn collect<S: TraceSource>(design: &DvsBusDesign, trace: &mut S, cycles: u64) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let mut analyzer = design.bus().analyzer();
        let mut hist = vec![0u64; N_BUCKETS * N_CEFF_BINS];
        let mut total_cap = 0.0f64;
        let mut toggles = 0u64;
        let mut prev = trace.next_word();
        for _ in 0..cycles {
            let cur = trace.next_word();
            let a = analyzer.analyze(prev, cur);
            prev = cur;
            if a.toggled_wires == 0 {
                continue;
            }
            let bucket = bucket_of(a.toggled_wires);
            hist[bucket * N_CEFF_BINS + bin_of(a.worst_ceff_per_mm)] += 1;
            total_cap += a.switched_cap_per_mm;
            toggles += u64::from(a.toggled_wires);
        }
        Self {
            hist,
            total_switched_cap_per_mm: total_cap,
            total_toggles: toggles,
            cycles,
        }
    }

    /// Assembles a summary from raw accumulators — used by the streaming
    /// simulator, whose batched loop computes the identical per-cycle
    /// (bucket, load-bin) classification and can therefore produce the
    /// histogram as a by-product of a closed-loop run.
    ///
    /// # Panics
    ///
    /// Panics if the histogram shape is wrong or `cycles == 0`.
    #[must_use]
    pub(crate) fn from_parts(
        hist: Vec<u64>,
        total_switched_cap_per_mm: f64,
        total_toggles: u64,
        cycles: u64,
    ) -> Self {
        assert_eq!(hist.len(), N_BUCKETS * N_CEFF_BINS, "histogram shape");
        assert!(cycles > 0, "need at least one cycle");
        Self {
            hist,
            total_switched_cap_per_mm,
            total_toggles,
            cycles,
        }
    }

    /// Merges another summary (same design) into this one — used to
    /// combine the ten benchmarks for Figs. 4/5/10.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.hist.len(), other.hist.len(), "summary shapes differ");
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        self.total_switched_cap_per_mm += other.total_switched_cap_per_mm;
        self.total_toggles += other.total_toggles;
        self.cycles += other.cycles;
    }

    /// Cycles summarized.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Mean toggling wires per cycle.
    #[must_use]
    pub fn mean_toggles(&self) -> f64 {
        self.total_toggles as f64 / self.cycles as f64
    }

    /// Number of cycles whose worst wire misses the *main* flop setup at
    /// supply `v` under corner `pvt` — i.e. Razor error cycles.
    ///
    /// # Panics
    ///
    /// Panics if `v` is off-grid.
    #[must_use]
    pub fn error_cycles(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        v: razorbus_units::Millivolts,
    ) -> u64 {
        let matrix = design
            .tables()
            .threshold_matrix(EnvCondition::from_pvt(pvt), pvt.ir);
        let vi = design
            .grid()
            .index_of(v)
            .unwrap_or_else(|| panic!("voltage {v} off grid"));
        let row = matrix.row(vi);
        let mut errors = 0u64;
        for (bucket, &limit) in row.iter().enumerate().take(N_BUCKETS) {
            let start = if limit < 0.0 {
                0
            } else {
                ((limit / CEFF_BIN_WIDTH).floor() as usize + 1).min(N_CEFF_BINS)
            };
            errors += self.hist[bucket * N_CEFF_BINS + start..(bucket + 1) * N_CEFF_BINS]
                .iter()
                .sum::<u64>();
        }
        errors
    }

    /// Error rate at `(pvt, v)`.
    #[must_use]
    pub fn error_rate(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        v: razorbus_units::Millivolts,
    ) -> f64 {
        self.error_cycles(design, pvt, v) as f64 / self.cycles as f64
    }

    /// Same against the *shadow* budget: cycles that would corrupt even
    /// the shadow latch (must be zero wherever the regulator may sit).
    #[must_use]
    pub fn shadow_violation_cycles(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        v: razorbus_units::Millivolts,
    ) -> u64 {
        let matrix = design
            .tables()
            .shadow_threshold_matrix(EnvCondition::from_pvt(pvt), pvt.ir);
        let vi = design
            .grid()
            .index_of(v)
            .unwrap_or_else(|| panic!("voltage {v} off grid"));
        let row = matrix.row(vi);
        let mut violations = 0u64;
        for (bucket, &limit) in row.iter().enumerate().take(N_BUCKETS) {
            let start = if limit < 0.0 {
                0
            } else {
                ((limit / CEFF_BIN_WIDTH).floor() as usize + 1).min(N_CEFF_BINS)
            };
            violations += self.hist[bucket * N_CEFF_BINS + start..(bucket + 1) * N_CEFF_BINS]
                .iter()
                .sum::<u64>();
        }
        violations
    }

    /// Total bus energy of replaying this trace at fixed supply `v`
    /// under `pvt`, including dynamic wire + repeater energy, flop
    /// clocking/data, leakage, and (optionally) error-recovery overhead.
    #[must_use]
    pub fn energy(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        v: razorbus_units::Millivolts,
        include_recovery: bool,
    ) -> Femtojoules {
        let tables = design.tables();
        let cond = EnvCondition::from_pvt(pvt);
        let energy = tables.energy_table(cond);
        let vi = design.grid().index_of(v).expect("voltage on grid");
        let v2 = energy.v_squared_at(vi);
        let volts = v.to_volts();

        let length_mm = design.bus().line().total_length().mm();
        let wire_fj = self.total_switched_cap_per_mm * length_mm * v2;
        let repeater_fj = self.total_toggles as f64 * tables.repeater_cap_per_toggle().ff() * v2;
        let n_flops = tables.n_bits();
        let fe = design.flop_energy();
        let flop_clock_fj = fe.clock_capacitance(n_flops).ff() * v2 * self.cycles as f64;
        let flop_data_fj = fe.data_capacitance().ff() * v2 * self.total_toggles as f64;
        let leak_fj = energy.leakage_per_cycle_at(vi).fj() * self.cycles as f64;

        let mut total = wire_fj + repeater_fj + flop_clock_fj + flop_data_fj + leak_fj;
        if include_recovery {
            let errors = self.error_cycles(design, pvt, v);
            total += errors as f64 * fe.recovery_energy(n_flops, 1, volts).fj();
        }
        Femtojoules::new(total)
    }

    /// Energy gain (fraction) of running at `v` versus the nominal
    /// supply, recovery overhead included.
    #[must_use]
    pub fn energy_gain(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        v: razorbus_units::Millivolts,
    ) -> f64 {
        let base = self.energy(design, pvt, design.nominal(), false);
        let at_v = self.energy(design, pvt, v, true);
        1.0 - at_v / base
    }

    /// Lowest grid voltage whose error rate stays within `target`,
    /// respecting the corner's static shadow floor (§4's sweep rule).
    /// Returns the nominal voltage when no scaling is possible.
    #[must_use]
    pub fn lowest_voltage_for_error_rate(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        target: f64,
    ) -> razorbus_units::Millivolts {
        let floor = design.static_shadow_floor(pvt);
        design
            .grid()
            .iter()
            .filter(|&v| v >= floor)
            .find(|&v| self.error_rate(design, pvt, v) <= target)
            .unwrap_or_else(|| design.nominal())
    }
}

/// Per-window (10 000-cycle) summaries for the oracle analysis of Fig. 6.
#[derive(Debug, Clone)]
pub struct WindowedSummary {
    /// One [`TraceSummary`]-shaped histogram per window, flattened.
    windows: Vec<TraceSummary>,
    window_len: u64,
}

impl WindowedSummary {
    /// Collects `n_windows` windows of `window_len` cycles each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn collect<S: TraceSource>(
        design: &DvsBusDesign,
        trace: &mut S,
        n_windows: usize,
        window_len: u64,
    ) -> Self {
        assert!(n_windows > 0 && window_len > 0, "empty windowing");
        let windows = (0..n_windows)
            .map(|_| TraceSummary::collect(design, trace, window_len))
            .collect();
        Self {
            windows,
            window_len,
        }
    }

    /// Window length in cycles.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// The per-window summaries.
    #[must_use]
    pub fn windows(&self) -> &[TraceSummary] {
        &self.windows
    }

    /// The §5/Fig. 6 oracle: for each window, the lowest voltage (at or
    /// above the corner's shadow floor) keeping that window's error rate
    /// within `target`. This is "optimal supply voltage selection (with
    /// the knowledge of future program switching behavior)".
    #[must_use]
    pub fn oracle_voltages(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        target: f64,
    ) -> Vec<razorbus_units::Millivolts> {
        self.windows
            .iter()
            .map(|w| w.lowest_voltage_for_error_rate(design, pvt, target))
            .collect()
    }

    /// Residency histogram: fraction of time the oracle spends at each
    /// grid voltage (only voltages with non-zero residency are returned,
    /// ascending).
    #[must_use]
    pub fn oracle_residency(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        target: f64,
    ) -> Vec<(razorbus_units::Millivolts, f64)> {
        let choices = self.oracle_voltages(design, pvt, target);
        let grid = design.grid();
        let mut counts = vec![0u64; grid.len()];
        for v in &choices {
            counts[grid.index_of(*v).expect("oracle picks grid points")] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (grid.at(i), c as f64 / choices.len() as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use razorbus_traces::Benchmark;
    use razorbus_units::Millivolts;

    fn design() -> DvsBusDesign {
        DvsBusDesign::paper_default()
    }

    #[test]
    fn error_rate_monotone_in_voltage() {
        let d = design();
        let s = TraceSummary::collect(&d, &mut Benchmark::Mgrid.trace(3), 30_000);
        // Monotone check ascending: rate must not increase with V.
        let rates: Vec<f64> = d
            .grid()
            .iter()
            .map(|v| s.error_rate(&d, PvtCorner::TYPICAL, v))
            .collect();
        assert!(rates.windows(2).all(|w| w[1] <= w[0] + 1e-12), "{rates:?}");
    }

    #[test]
    fn design_corner_is_error_free_at_nominal() {
        let d = design();
        let s = TraceSummary::collect(&d, &mut Benchmark::Mgrid.trace(5), 30_000);
        assert_eq!(
            s.error_cycles(&d, PvtCorner::WORST, Millivolts::new(1_200)),
            0
        );
        assert_eq!(
            s.shadow_violation_cycles(&d, PvtCorner::WORST, Millivolts::new(1_200)),
            0
        );
    }

    #[test]
    fn energy_shrinks_quadratically_with_voltage() {
        let d = design();
        let s = TraceSummary::collect(&d, &mut Benchmark::Crafty.trace(7), 20_000);
        let hi = s.energy(&d, PvtCorner::TYPICAL, Millivolts::new(1_200), false);
        let lo = s.energy(&d, PvtCorner::TYPICAL, Millivolts::new(900), false);
        let ratio = lo / hi;
        // Dynamic part scales by (0.9/1.2)^2 = 0.5625; leakage softens it.
        assert!((0.5..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn merge_combines_cycles_and_histograms() {
        let d = design();
        let mut a = TraceSummary::collect(&d, &mut Benchmark::Crafty.trace(1), 10_000);
        let b = TraceSummary::collect(&d, &mut Benchmark::Mgrid.trace(1), 10_000);
        let ea = a.error_cycles(&d, PvtCorner::TYPICAL, Millivolts::new(900));
        let eb = b.error_cycles(&d, PvtCorner::TYPICAL, Millivolts::new(900));
        a.merge(&b);
        assert_eq!(a.cycles(), 20_000);
        assert_eq!(
            a.error_cycles(&d, PvtCorner::TYPICAL, Millivolts::new(900)),
            ea + eb
        );
    }

    #[test]
    fn crafty_scales_deeper_than_mgrid() {
        let d = design();
        let crafty = TraceSummary::collect(&d, &mut Benchmark::Crafty.trace(2), 60_000);
        let mgrid = TraceSummary::collect(&d, &mut Benchmark::Mgrid.trace(2), 60_000);
        let v_crafty = crafty.lowest_voltage_for_error_rate(&d, PvtCorner::TYPICAL, 0.02);
        let v_mgrid = mgrid.lowest_voltage_for_error_rate(&d, PvtCorner::TYPICAL, 0.02);
        assert!(v_crafty < v_mgrid, "crafty {v_crafty} !< mgrid {v_mgrid}");
    }

    #[test]
    fn oracle_residency_sums_to_one() {
        let d = design();
        let mut trace = Benchmark::Vortex.trace(9);
        let w = WindowedSummary::collect(&d, &mut trace, 20, 5_000);
        let residency = w.oracle_residency(&d, PvtCorner::TYPICAL, 0.02);
        let total: f64 = residency.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Looser target never needs a higher voltage in any window.
        let tight = w.oracle_voltages(&d, PvtCorner::TYPICAL, 0.02);
        let loose = w.oracle_voltages(&d, PvtCorner::TYPICAL, 0.05);
        for (t, l) in tight.iter().zip(&loose) {
            assert!(l <= t);
        }
    }
}
