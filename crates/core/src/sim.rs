//! Streaming closed-loop simulation: trace → bus → error detection →
//! governor, with full energy accounting.
//!
//! The loop is organized around two ideas that keep the paper's
//! 10 M-cycle runs fast without changing a single observable number:
//!
//! 1. **Per-voltage precomputation.** Everything the loop looks up by
//!    supply grid index — pass limits per activity bucket, shadow
//!    limits, `V²`, leakage, recovery energy — is hoisted into one
//!    [`VoltageRow`] per grid point, built once per run.
//! 2. **Window batching.** Governors advertise how long the supply is
//!    guaranteed steady ([`razorbus_ctrl::VoltageGovernor::steady_cycles`]);
//!    the simulator evaluates that whole chunk in a tight inner loop with
//!    no grid/table lookups and reports outcomes in one
//!    `record_batch` call, re-entering the slow path only when the
//!    set-point can move or a sample boundary hits.
//!
//! [`BusSimulator::run_reference`] keeps the original cycle-at-a-time
//! loop; differential tests pin the batched path to it cycle-for-cycle.
//!
//! The batched loop itself is generic over a [`ChunkStream`]: asked for
//! a chunk of cycles at one supply, the live path classifies words
//! through `analyze_cycle` on the fly (the scalar per-cycle body over a
//! [`CycleStream`]), while the compiled path
//! ([`crate::CompiledTrace::replay`]) runs the lane-vectorized kernel
//! (`lane.rs`) directly over the stored struct-of-arrays tuples. The
//! chunk accumulators and everything around them — energy folds,
//! sampling, governor batching — are one shared function, and the lane
//! kernel is pinned bit-identical to the scalar body
//! ([`CompiledTrace::replay_scalar`]) by differential tests, so every
//! path reports the same numbers to the last bit.

use crate::compiled::CompiledTrace;
use crate::design::DvsBusDesign;
use crate::lane::{self, LaneAccum, LaneThresholds};
use razorbus_ctrl::VoltageGovernor;
use razorbus_process::PvtCorner;
use razorbus_tables::EnvCondition;
use razorbus_traces::TraceSource;
use razorbus_units::{Femtojoules, Millivolts};

use crate::summary::{bin_of, bucket_of, CEFF_BIN_WIDTH, N_BUCKETS, N_CEFF_BINS};

/// Everything the hot loop needs about one supply grid point, gathered so
/// the steady-state inner loop runs without any matrix/table indexing.
#[derive(Debug, Clone, Copy)]
struct VoltageRow {
    /// Main-flop pass limit (fF/mm) per activity bucket.
    pass: [f64; N_BUCKETS],
    /// Shadow-latch pass limit (fF/mm) per activity bucket.
    shadow: [f64; N_BUCKETS],
    /// Supply squared (V²) — multiplied by switched capacitance for
    /// dynamic energy.
    v2: f64,
    /// Whole-bus leakage per cycle (fJ).
    leak_fj: f64,
    /// Error-recovery energy (fJ) — the extra bank clock + restored bit
    /// at this supply.
    recovery_fj: f64,
}

/// Histogram accumulators for [`BusSimulator::with_histogram`]: the
/// identical per-cycle (bucket, load-bin) classification the sweep engine
/// collects, gathered as a by-product of a closed-loop run.
#[derive(Debug, Clone)]
struct HistogramAccum {
    hist: Vec<u64>,
    total_cap: f64,
    toggles: u64,
}

/// One sampled point of the supply/error trajectory (Fig. 8 material).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VoltageSample {
    /// Cycle index at the *end* of the sampled window.
    pub cycle: u64,
    /// Supply set-point at the sample instant.
    pub voltage: Millivolts,
    /// Error rate over the sampled window.
    pub window_error_rate: f64,
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Error (recovery) cycles.
    pub errors: u64,
    /// Silent-corruption cycles — must be zero for a sound design.
    pub shadow_violations: u64,
    /// Total energy with DVS (bus + flops + leakage + recovery).
    pub energy: Femtojoules,
    /// Energy the same trace would draw at the fixed nominal supply.
    pub baseline_energy: Femtojoules,
    /// Cycle-weighted mean supply (mV).
    pub mean_voltage_mv: f64,
    /// Lowest supply visited.
    pub min_voltage: Millivolts,
    /// Window-sampled trajectory (empty unless sampling was enabled).
    pub samples: Vec<VoltageSample>,
    /// The trace's sweep-engine histogram, identical to what
    /// [`crate::TraceSummary::collect`] would gather over the same words
    /// — present only when [`BusSimulator::with_histogram`] was enabled.
    pub summary: Option<crate::TraceSummary>,
}

impl SimReport {
    /// Average error rate.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.errors as f64 / self.cycles as f64
        }
    }

    /// Energy gain over the nominal-supply baseline.
    #[must_use]
    pub fn energy_gain(&self) -> f64 {
        1.0 - self.energy / self.baseline_energy
    }

    /// IPC degradation under the paper's 1-cycle-penalty model (§3:
    /// "translate this to a reduction in performance (IPC) that is the
    /// same as the error-rate").
    #[must_use]
    pub fn performance_loss(&self) -> f64 {
        self.error_rate()
    }
}

/// The closed-loop simulator.
///
/// Generic over the trace source and the governor so the same loop runs
/// static sweeps ([`razorbus_ctrl::FixedVoltage`]), the paper controller
/// ([`razorbus_ctrl::ThresholdController`]) and the proportional variant.
#[derive(Debug)]
pub struct BusSimulator<'d, S, G> {
    design: &'d DvsBusDesign,
    pvt: PvtCorner,
    trace: S,
    governor: G,
    prev_word: u32,
    sample_every: Option<u64>,
    collect_histogram: bool,
}

impl<'d, S: TraceSource, G: VoltageGovernor> BusSimulator<'d, S, G> {
    /// Creates a simulator at the true environment `pvt`.
    #[must_use]
    pub fn new(design: &'d DvsBusDesign, pvt: PvtCorner, mut trace: S, governor: G) -> Self {
        let prev_word = trace.next_word();
        Self {
            design,
            pvt,
            trace,
            governor,
            prev_word,
            sample_every: None,
            collect_histogram: false,
        }
    }

    /// Enables trajectory sampling every `window` cycles (Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_sampling(mut self, window: u64) -> Self {
        assert!(window > 0, "sampling window must be positive");
        self.sample_every = Some(window);
        self
    }

    /// Also collect the trace's sweep-engine histogram during the run.
    ///
    /// The closed-loop simulator classifies every cycle by (activity
    /// bucket, quantized worst-wire load) anyway, so gathering the same
    /// histogram [`crate::TraceSummary::collect`] would produce costs one
    /// array increment per cycle — and saves a whole second pass over the
    /// trace when a driver needs both (Table 1, `repro all`). The result
    /// arrives in [`SimReport::summary`].
    #[must_use]
    pub fn with_histogram(mut self) -> Self {
        self.collect_histogram = true;
        self
    }

    /// Access to the governor (e.g. to read controller statistics).
    #[must_use]
    pub fn governor(&self) -> &G {
        &self.governor
    }

    /// Consumes the simulator, returning the governor.
    #[must_use]
    pub fn into_governor(self) -> G {
        self.governor
    }

    /// Runs `cycles` cycles and reports.
    ///
    /// This is the batched fast path: per-voltage rows are precomputed
    /// once, and the governor's steady-state guarantee lets whole chunks
    /// run in a tight inner loop with per-chunk (not per-cycle) grid
    /// lookups, energy scaling and governor bookkeeping. It is pinned to
    /// [`BusSimulator::run_reference`] by differential tests: identical
    /// error/violation counts cycle-for-cycle, energies equal to ≤1e-9
    /// relative (the accumulation order differs). The loop body
    /// (`run_stream`) is shared verbatim with the compiled-trace replay
    /// path, [`crate::CompiledTrace::replay`].
    ///
    /// # Panics
    ///
    /// Panics if the governor commands a voltage off the design grid.
    pub fn run(&mut self, cycles: u64) -> SimReport {
        let stream = ScalarChunks(AnalyzeStream {
            bus: self.design.bus(),
            trace: &mut self.trace,
            prev: &mut self.prev_word,
        });
        run_stream(
            self.design,
            self.pvt,
            &mut self.governor,
            self.sample_every,
            self.collect_histogram,
            stream,
            cycles,
        )
    }

    /// Runs `cycles` cycles through the original cycle-at-a-time loop:
    /// one grid lookup, two threshold-matrix probes, two energy-table
    /// probes and one `record_cycle` per cycle.
    ///
    /// This is the semantic reference for [`BusSimulator::run`] — slower,
    /// but trivially correct — kept so differential tests can pin the
    /// batched loop to it (and so future loop changes have a baseline to
    /// diff against).
    ///
    /// # Panics
    ///
    /// Panics if the governor commands a voltage off the design grid.
    pub fn run_reference(&mut self, cycles: u64) -> SimReport {
        let design = self.design;
        let grid = design.grid();
        let tables = design.tables();
        let cond = EnvCondition::from_pvt(self.pvt);
        let matrix = tables.threshold_matrix(cond, self.pvt.ir);
        let shadow_matrix = tables.shadow_threshold_matrix(cond, self.pvt.ir);
        let energy_table = tables.energy_table(cond);
        let bus = design.bus();
        let fe = design.flop_energy();

        let n_flops = tables.n_bits();
        let length_mm = bus.line().total_length().mm();
        let rep_cap = tables.repeater_cap_per_toggle().ff();
        let clock_cap = fe.clock_capacitance(n_flops).ff();
        let data_cap = fe.data_capacitance().ff();
        let recovery_cap = clock_cap + data_cap;

        let nominal_idx = grid.index_of(design.nominal()).expect("nominal on grid");
        let v2_nominal = energy_table.v_squared_at(nominal_idx);
        let leak_nominal = energy_table.leakage_per_cycle_at(nominal_idx).fj();

        let mut errors = 0u64;
        let mut shadow_violations = 0u64;
        let mut energy_fj = 0.0f64;
        let mut baseline_fj = 0.0f64;
        let mut mv_sum = 0.0f64;
        let mut min_v = self.governor.voltage();
        let mut samples = Vec::new();
        let mut window_errors = 0u64;
        let mut window_cycles = 0u64;

        for cycle in 0..cycles {
            let v = self.governor.voltage();
            let vi = grid
                .index_of(v)
                .unwrap_or_else(|| panic!("governor voltage {v} off grid"));
            let cur = self.trace.next_word();
            let analysis = bus.analyze_cycle(self.prev_word, cur);
            self.prev_word = cur;

            let bucket = bucket_of(analysis.toggled_wires);
            let error = analysis.toggled_wires > 0
                && crate::summary::ceff_bin_floor(analysis.worst_ceff_per_mm)
                    > matrix.pass_limit_at(vi, bucket);
            if error {
                errors += 1;
                if crate::summary::ceff_bin_floor(analysis.worst_ceff_per_mm)
                    > shadow_matrix.pass_limit_at(vi, bucket)
                {
                    shadow_violations += 1;
                }
            }

            let v2 = energy_table.v_squared_at(vi);
            let toggles = f64::from(analysis.toggled_wires);
            let switched = analysis.switched_cap_per_mm * length_mm
                + toggles * (rep_cap + data_cap)
                + clock_cap;
            energy_fj += switched * v2 + energy_table.leakage_per_cycle_at(vi).fj();
            if error {
                energy_fj += recovery_cap * v2;
            }
            baseline_fj += switched * v2_nominal + leak_nominal;

            mv_sum += f64::from(v.mv());
            min_v = min_v.min(v);
            self.governor.record_cycle(error);

            if let Some(window) = self.sample_every {
                window_errors += u64::from(error);
                window_cycles += 1;
                if window_cycles == window {
                    samples.push(VoltageSample {
                        cycle: cycle + 1,
                        voltage: self.governor.voltage(),
                        window_error_rate: window_errors as f64 / window as f64,
                    });
                    window_errors = 0;
                    window_cycles = 0;
                }
            }
        }
        if window_cycles > 0 {
            samples.push(VoltageSample {
                cycle: cycles,
                voltage: self.governor.voltage(),
                window_error_rate: window_errors as f64 / window_cycles as f64,
            });
        }

        SimReport {
            cycles,
            errors,
            shadow_violations,
            energy: Femtojoules::new(energy_fj),
            baseline_energy: Femtojoules::new(baseline_fj),
            mean_voltage_mv: if cycles == 0 {
                0.0
            } else {
                mv_sum / cycles as f64
            },
            min_voltage: min_v,
            samples,
            summary: None,
        }
    }
}

/// Builds the per-voltage hot rows: one [`VoltageRow`] per grid point,
/// so the steady-state inner loop never touches the matrices or energy
/// tables. Shared by the live and compiled-replay paths.
fn voltage_rows(design: &DvsBusDesign, pvt: PvtCorner, recovery_cap: f64) -> Vec<VoltageRow> {
    let tables = design.tables();
    let cond = EnvCondition::from_pvt(pvt);
    let matrix = tables.threshold_matrix(cond, pvt.ir);
    let shadow_matrix = tables.shadow_threshold_matrix(cond, pvt.ir);
    let energy_table = tables.energy_table(cond);
    (0..design.grid().len())
        .map(|vi| {
            let mut pass = [0.0; N_BUCKETS];
            let mut shadow = [0.0; N_BUCKETS];
            for b in 0..N_BUCKETS {
                pass[b] = matrix.pass_limit_at(vi, b);
                shadow[b] = shadow_matrix.pass_limit_at(vi, b);
            }
            let v2 = energy_table.v_squared_at(vi);
            VoltageRow {
                pass,
                shadow,
                v2,
                leak_fj: energy_table.leakage_per_cycle_at(vi).fj(),
                recovery_fj: recovery_cap * v2,
            }
        })
        .collect()
}

/// The per-cycle input of the batched loop: one `(toggle count,
/// quantized load bin, switched capacitance fF/mm)` tuple per cycle.
/// The live path computes it through `analyze_cycle`; the compiled path
/// reads it back from a [`CompiledTrace`]. Keeping the loop body
/// generic over this trait (instead of duplicating it) is what makes
/// the replay bit-identical to the live run by construction.
trait CycleStream {
    fn next_cycle(&mut self) -> (u32, usize, f64);
}

/// Live classification: words → `analyze_cycle` → tuple.
struct AnalyzeStream<'a, S> {
    bus: &'a razorbus_wire::BusPhysical,
    trace: &'a mut S,
    prev: &'a mut u32,
}

impl<S: TraceSource> CycleStream for AnalyzeStream<'_, S> {
    #[inline]
    fn next_cycle(&mut self) -> (u32, usize, f64) {
        let cur = self.trace.next_word();
        let a = self.bus.analyze_cycle(*self.prev, cur);
        *self.prev = cur;
        // Quantized exactly like the histogram engine (1 fF/mm bins) so
        // the two agree cycle-for-cycle.
        (
            a.toggled_wires,
            bin_of(a.worst_ceff_per_mm),
            a.switched_cap_per_mm,
        )
    }
}

/// Stored classification: the compiled arrays, read front to back.
struct CompiledStream<'a> {
    trace: &'a CompiledTrace,
    cursor: usize,
}

impl CycleStream for CompiledStream<'_> {
    #[inline]
    fn next_cycle(&mut self) -> (u32, usize, f64) {
        let t = self.trace.cycle(self.cursor);
        self.cursor += 1;
        t
    }
}

/// The chunk-granular input of the batched loop: advance `chunk` cycles
/// at supply grid point `vi` (whose precomputed row is `row`), return
/// the chunk's accumulators, and feed `hist` when the histogram
/// by-product is enabled. [`run_stream`] owns everything around the
/// chunk (energy folds, sampling, governor batching); implementations
/// own only the per-cycle classification — scalar for live streams,
/// lane-vectorized for compiled arrays.
trait ChunkStream {
    fn run_chunk(
        &mut self,
        chunk: u64,
        vi: usize,
        row: &VoltageRow,
        hist: Option<&mut HistogramAccum>,
    ) -> LaneAccum;
}

/// The scalar per-cycle chunk body over any [`CycleStream`] — the
/// original inner loop, verbatim. The live path always runs this; the
/// compiled path runs it for histogram replays (whose per-cycle array
/// increments must land in collection order) and keeps it as the pinned
/// reference for the lane kernel.
fn scalar_chunk<C: CycleStream>(
    stream: &mut C,
    chunk: u64,
    row: &VoltageRow,
    mut hist: Option<&mut HistogramAccum>,
) -> LaneAccum {
    let mut acc = LaneAccum::default();
    for _ in 0..chunk {
        let (toggles, bin, switched_cap) = stream.next_cycle();
        let bucket = bucket_of(toggles);
        let load = bin as f64 * CEFF_BIN_WIDTH;
        let error = toggles > 0 && load > row.pass[bucket];
        acc.errors += u64::from(error);
        acc.shadow += u64::from(error && load > row.shadow[bucket]);
        acc.wire_cap += switched_cap;
        acc.toggles += u64::from(toggles);
        if let Some(h) = hist.as_deref_mut() {
            // Same accumulation (and the same float-add order)
            // as `TraceSummary::collect` over these words.
            if toggles > 0 {
                h.hist[bucket * N_CEFF_BINS + bin] += 1;
                h.total_cap += switched_cap;
                h.toggles += u64::from(toggles);
            }
        }
    }
    acc
}

/// Scalar chunking over any [`CycleStream`].
struct ScalarChunks<C>(C);

impl<C: CycleStream> ChunkStream for ScalarChunks<C> {
    fn run_chunk(
        &mut self,
        chunk: u64,
        _vi: usize,
        row: &VoltageRow,
        hist: Option<&mut HistogramAccum>,
    ) -> LaneAccum {
        scalar_chunk(&mut self.0, chunk, row, hist)
    }
}

/// Lane-vectorized chunking over the compiled struct-of-arrays stream:
/// per-supply integer thresholds built lazily (once per grid point the
/// governor actually visits), then eight cycles per step through the
/// u64 kernel in `lane.rs`. Histogram chunks fall back to the scalar
/// body — identical numbers, collection-order array increments.
struct LaneChunks<'a> {
    toggles: &'a [u8],
    bins: &'a [u16],
    switched: &'a [f64],
    cursor: usize,
    thresholds: Vec<Option<LaneThresholds>>,
}

impl<'a> LaneChunks<'a> {
    fn new(trace: &'a CompiledTrace, grid_len: usize) -> Self {
        let (toggles, bins, switched) = trace.arrays();
        Self {
            toggles,
            bins,
            switched,
            cursor: 0,
            thresholds: (0..grid_len).map(|_| None).collect(),
        }
    }
}

impl CycleStream for LaneChunks<'_> {
    #[inline]
    fn next_cycle(&mut self) -> (u32, usize, f64) {
        let c = self.cursor;
        self.cursor += 1;
        (
            u32::from(self.toggles[c]),
            usize::from(self.bins[c]),
            self.switched[c],
        )
    }
}

impl ChunkStream for LaneChunks<'_> {
    fn run_chunk(
        &mut self,
        chunk: u64,
        vi: usize,
        row: &VoltageRow,
        hist: Option<&mut HistogramAccum>,
    ) -> LaneAccum {
        if hist.is_some() {
            return scalar_chunk(self, chunk, row, hist);
        }
        let start = self.cursor;
        let end = start + usize::try_from(chunk).expect("chunk fits in memory");
        let thr = self.thresholds[vi]
            .get_or_insert_with(|| LaneThresholds::from_limits(&row.pass, &row.shadow));
        let acc = lane::process(
            &self.toggles[start..end],
            &self.bins[start..end],
            &self.switched[start..end],
            thr,
        );
        self.cursor = end;
        acc
    }
}

/// The batched closed-loop body shared by [`BusSimulator::run`] and
/// [`CompiledTrace::replay`]: per-voltage rows precomputed once,
/// governor-guaranteed-steady chunks evaluated by the stream's chunk
/// body (scalar or lane-vectorized). See [`BusSimulator::run`] for the
/// contract.
fn run_stream<C: ChunkStream, G: VoltageGovernor>(
    design: &DvsBusDesign,
    pvt: PvtCorner,
    governor: &mut G,
    sample_every: Option<u64>,
    collect_histogram: bool,
    mut stream: C,
    cycles: u64,
) -> SimReport {
    let grid = design.grid();
    let tables = design.tables();
    let fe = design.flop_energy();

    let n_flops = tables.n_bits();
    let length_mm = design.bus().line().total_length().mm();
    let rep_cap = tables.repeater_cap_per_toggle().ff();
    let clock_cap = fe.clock_capacitance(n_flops).ff();
    let data_cap = fe.data_capacitance().ff();
    // Recovery ~ one extra bank clock + one restored bit (paper: the
    // extra clocking dominates).
    let recovery_cap = clock_cap + data_cap;
    let rows = voltage_rows(design, pvt, recovery_cap);

    let nominal_idx = grid.index_of(design.nominal()).expect("nominal on grid");
    let v2_nominal = rows[nominal_idx].v2;
    let leak_nominal = rows[nominal_idx].leak_fj;

    let mut errors = 0u64;
    let mut shadow_violations = 0u64;
    let mut energy_fj = 0.0f64;
    let mut baseline_fj = 0.0f64;
    let mut mv_sum = 0.0f64;
    let mut min_v = governor.voltage();
    let mut samples = Vec::new();
    let mut window_errors = 0u64;
    let mut window_cycles = 0u64;
    let mut hist = collect_histogram.then(|| HistogramAccum {
        hist: vec![0u64; N_BUCKETS * N_CEFF_BINS],
        total_cap: 0.0,
        toggles: 0,
    });

    let mut cycle = 0u64;
    while cycle < cycles {
        // Slow path: re-resolve the supply and chunk length. The
        // chunk never outlives the governor's steady guarantee, the
        // sample window, or the run itself.
        let v = governor.voltage();
        let vi = grid
            .index_of(v)
            .unwrap_or_else(|| panic!("governor voltage {v} off grid"));
        let row = &rows[vi];
        let mut chunk = governor.steady_cycles().max(1).min(cycles - cycle);
        if let Some(window) = sample_every {
            chunk = chunk.min(window - window_cycles);
        }

        // Fast path: the whole chunk at one supply, no table lookups.
        let acc = stream.run_chunk(chunk, vi, row, hist.as_mut());

        let switched = acc.wire_cap * length_mm
            + acc.toggles as f64 * (rep_cap + data_cap)
            + chunk as f64 * clock_cap;
        energy_fj +=
            switched * row.v2 + chunk as f64 * row.leak_fj + acc.errors as f64 * row.recovery_fj;
        baseline_fj += switched * v2_nominal + chunk as f64 * leak_nominal;
        errors += acc.errors;
        shadow_violations += acc.shadow;
        mv_sum += f64::from(v.mv()) * chunk as f64;
        min_v = min_v.min(v);
        governor.record_batch(chunk, acc.errors);
        cycle += chunk;

        if let Some(window) = sample_every {
            window_errors += acc.errors;
            window_cycles += chunk;
            if window_cycles == window {
                samples.push(VoltageSample {
                    cycle,
                    voltage: governor.voltage(),
                    window_error_rate: window_errors as f64 / window as f64,
                });
                window_errors = 0;
                window_cycles = 0;
            }
        }
    }
    if window_cycles > 0 {
        // Trailing partial window: report it rather than dropping the
        // tail of the trajectory.
        samples.push(VoltageSample {
            cycle: cycles,
            voltage: governor.voltage(),
            window_error_rate: window_errors as f64 / window_cycles as f64,
        });
    }

    let summary = match hist {
        Some(h) if cycles > 0 => Some(crate::TraceSummary::from_parts(
            h.hist,
            h.total_cap,
            h.toggles,
            cycles,
        )),
        _ => None,
    };
    SimReport {
        cycles,
        errors,
        shadow_violations,
        energy: Femtojoules::new(energy_fj),
        baseline_energy: Femtojoules::new(baseline_fj),
        mean_voltage_mv: if cycles == 0 {
            0.0
        } else {
            mv_sum / cycles as f64
        },
        min_voltage: min_v,
        samples,
        summary,
    }
}

/// One member of a fused replay group: an *open-loop* operating point —
/// environment corner plus fixed supply — judged over a compiled trace
/// in the same pass as every other member of its group
/// ([`CompiledTrace::replay_fused`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedOp {
    /// The true environment corner the member runs at.
    pub pvt: PvtCorner,
    /// The member's fixed supply (must be on the design grid).
    pub supply: Millivolts,
}

/// Per-member running state of a fused replay: the member's hot row and
/// nominal constants plus exactly the accumulators [`run_stream`] folds
/// per chunk.
struct FusedMember {
    supply: Millivolts,
    v_mv: f64,
    row: VoltageRow,
    v2_nominal: f64,
    leak_nominal: f64,
    errors: u64,
    shadow: u64,
    energy_fj: f64,
    baseline_fj: f64,
    mv_sum: f64,
    window_errors: u64,
    samples: Vec<VoltageSample>,
}

impl CompiledTrace {
    /// Replays the compiled stream through the batched closed-loop body
    /// — the exact loop [`BusSimulator::run`] executes, with the
    /// per-cycle classification running through the lane-vectorized
    /// kernel (`lane.rs`): integer bin-threshold compares in eight-cycle
    /// u64 lanes, float accumulation untouched. Bit-identical to running
    /// [`BusSimulator`] over the original trace with the same governor
    /// — and to [`CompiledTrace::replay_scalar`] — errors, violations
    /// and samples match bitwise, energies are exact (same per-cycle add
    /// sequence). Histogram replays (`with_summary`) take the scalar
    /// chunk body so the by-product's array increments land in
    /// collection order.
    ///
    /// Replays all [`CompiledTrace::cycles`] cycles and returns the
    /// governor (carried across program boundaries by suite protocols).
    ///
    /// # Panics
    ///
    /// Panics when the trace's bus stamps do not match `design` (see
    /// [`CompiledTrace::matches`]), when `sampling` is `Some(0)`, or if
    /// the governor commands a voltage off the design grid.
    #[must_use]
    pub fn replay<G: VoltageGovernor>(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        mut governor: G,
        sampling: Option<u64>,
        with_summary: bool,
    ) -> (SimReport, G) {
        self.check_replay(design, sampling);
        let stream = LaneChunks::new(self, design.grid().len());
        let report = run_stream(
            design,
            pvt,
            &mut governor,
            sampling,
            with_summary,
            stream,
            self.cycles(),
        );
        (report, governor)
    }

    /// Replays through the scalar per-cycle loop body — the pinned
    /// semantic reference for the lane-vectorized
    /// [`CompiledTrace::replay`]. Same contract, same numbers to the
    /// last bit (differential tests enforce `to_bits()` equality across
    /// designs, governors and corners); kept callable so any future
    /// kernel change always has an executable baseline to diff against.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CompiledTrace::replay`].
    #[must_use]
    pub fn replay_scalar<G: VoltageGovernor>(
        &self,
        design: &DvsBusDesign,
        pvt: PvtCorner,
        mut governor: G,
        sampling: Option<u64>,
        with_summary: bool,
    ) -> (SimReport, G) {
        self.check_replay(design, sampling);
        let stream = ScalarChunks(CompiledStream {
            trace: self,
            cursor: 0,
        });
        let report = run_stream(
            design,
            pvt,
            &mut governor,
            sampling,
            with_summary,
            stream,
            self.cycles(),
        );
        (report, governor)
    }

    /// Replays *every* operating point of `ops` in **one pass** over the
    /// compiled stream: the fused kernel (`lane.rs`) applies each
    /// member's requantized integer thresholds to every 8-cycle lane
    /// while the lane's words are hot in registers/L1, so a group of N
    /// open-loop members streams the 11 B/cycle arrays once instead of
    /// N times.
    ///
    /// Each member's report is **bit-identical** to its solo replay
    /// under [`razorbus_ctrl::FixedVoltage`] at the same corner, supply
    /// and sampling, by construction: a fixed supply is steady forever
    /// (`steady_cycles` is `u64::MAX`), so the solo chunk sequence is
    /// exactly the sampling windows (or one whole-trace chunk) — shared
    /// by every member — and the fused loop folds each member's
    /// accumulators per chunk in that same order, from the same
    /// member-independent toggle/capacitance sums the solo kernel
    /// produces. Pinned by `to_bits()` differential tests across
    /// designs × corners × fan-ins.
    ///
    /// Closed-loop governors are *not* expressible here — their voltage
    /// trajectories are feedback-driven, so their chunk boundaries
    /// diverge per member; callers keep those on solo replays.
    ///
    /// # Panics
    ///
    /// Panics when the trace's bus stamps do not match `design`, when
    /// `sampling` is `Some(0)`, or when any member's supply is off the
    /// design grid.
    #[must_use]
    pub fn replay_fused(
        &self,
        design: &DvsBusDesign,
        ops: &[FusedOp],
        sampling: Option<u64>,
    ) -> Vec<SimReport> {
        self.check_replay(design, sampling);
        if ops.is_empty() {
            return Vec::new();
        }
        let grid = design.grid();
        let tables = design.tables();
        let fe = design.flop_energy();
        let n_flops = tables.n_bits();
        let length_mm = design.bus().line().total_length().mm();
        let rep_cap = tables.repeater_cap_per_toggle().ff();
        let clock_cap = fe.clock_capacitance(n_flops).ff();
        let data_cap = fe.data_capacitance().ff();
        let recovery_cap = clock_cap + data_cap;
        let nominal_idx = grid.index_of(design.nominal()).expect("nominal on grid");

        // Row tables are per corner, not per member: a 2-corner ×
        // 8-supply group builds two, exactly as two solo replays would.
        let mut row_cache: Vec<(PvtCorner, Vec<VoltageRow>)> = Vec::new();
        for op in ops {
            if !row_cache.iter().any(|(p, _)| *p == op.pvt) {
                row_cache.push((op.pvt, voltage_rows(design, op.pvt, recovery_cap)));
            }
        }
        let mut thrs = Vec::with_capacity(ops.len());
        let mut members: Vec<FusedMember> = Vec::with_capacity(ops.len());
        for op in ops {
            let rows = &row_cache
                .iter()
                .find(|(p, _)| *p == op.pvt)
                .expect("cached above")
                .1;
            let vi = grid
                .index_of(op.supply)
                .unwrap_or_else(|| panic!("fused member supply {} off the design grid", op.supply));
            let row = rows[vi];
            thrs.push(LaneThresholds::from_limits(&row.pass, &row.shadow));
            members.push(FusedMember {
                supply: op.supply,
                v_mv: f64::from(op.supply.mv()),
                row,
                v2_nominal: rows[nominal_idx].v2,
                leak_nominal: rows[nominal_idx].leak_fj,
                errors: 0,
                shadow: 0,
                energy_fj: 0.0,
                baseline_fj: 0.0,
                mv_sum: 0.0,
                window_errors: 0,
                samples: Vec::new(),
            });
        }

        let (toggles, bins, switched) = self.arrays();
        let cycles = self.cycles();
        let mut counts = vec![lane::FusedCounts::default(); ops.len()];
        let mut cycle = 0u64;
        let mut window_cycles = 0u64;
        let mut cursor = 0usize;
        while cycle < cycles {
            // A fixed supply is steady forever, so — exactly as in each
            // member's solo replay — chunks are the sampling windows,
            // or one whole-trace chunk without sampling.
            let mut chunk = cycles - cycle;
            if let Some(window) = sampling {
                chunk = chunk.min(window - window_cycles);
            }
            let end = cursor + usize::try_from(chunk).expect("chunk fits in memory");
            let (toggle_sum, wire_cap) = lane::process_fused(
                &toggles[cursor..end],
                &bins[cursor..end],
                &switched[cursor..end],
                &thrs,
                &mut counts,
            );
            cursor = end;
            let switched_cap = wire_cap * length_mm
                + toggle_sum as f64 * (rep_cap + data_cap)
                + chunk as f64 * clock_cap;
            for (m, cnt) in members.iter_mut().zip(&counts) {
                m.energy_fj += switched_cap * m.row.v2
                    + chunk as f64 * m.row.leak_fj
                    + cnt.errors as f64 * m.row.recovery_fj;
                m.baseline_fj += switched_cap * m.v2_nominal + chunk as f64 * m.leak_nominal;
                m.errors += cnt.errors;
                m.shadow += cnt.shadow;
                m.mv_sum += m.v_mv * chunk as f64;
            }
            cycle += chunk;
            if let Some(window) = sampling {
                window_cycles += chunk;
                for (m, cnt) in members.iter_mut().zip(&counts) {
                    m.window_errors += cnt.errors;
                }
                if window_cycles == window {
                    for m in &mut members {
                        m.samples.push(VoltageSample {
                            cycle,
                            voltage: m.supply,
                            window_error_rate: m.window_errors as f64 / window as f64,
                        });
                        m.window_errors = 0;
                    }
                    window_cycles = 0;
                }
            }
        }
        if window_cycles > 0 {
            for m in &mut members {
                m.samples.push(VoltageSample {
                    cycle: cycles,
                    voltage: m.supply,
                    window_error_rate: m.window_errors as f64 / window_cycles as f64,
                });
            }
        }

        members
            .into_iter()
            .map(|m| SimReport {
                cycles,
                errors: m.errors,
                shadow_violations: m.shadow,
                energy: Femtojoules::new(m.energy_fj),
                baseline_energy: Femtojoules::new(m.baseline_fj),
                mean_voltage_mv: if cycles == 0 {
                    0.0
                } else {
                    m.mv_sum / cycles as f64
                },
                min_voltage: m.supply,
                samples: m.samples,
                summary: None,
            })
            .collect()
    }

    fn check_replay(&self, design: &DvsBusDesign, sampling: Option<u64>) {
        if let Err(e) = self.matches(design) {
            panic!("refusing to replay a compiled trace against the wrong design: {e}");
        }
        assert!(sampling != Some(0), "sampling window must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use razorbus_ctrl::{FixedVoltage, ThresholdController};
    use razorbus_process::ProcessCorner;
    use razorbus_traces::Benchmark;

    fn design() -> DvsBusDesign {
        DvsBusDesign::paper_default()
    }

    #[test]
    fn nominal_fixed_run_is_error_free_everywhere() {
        let d = design();
        for pvt in PvtCorner::FIG5 {
            let mut sim = BusSimulator::new(
                &d,
                pvt,
                Benchmark::Swim.trace(3),
                FixedVoltage::new(Millivolts::new(1_200)),
            );
            let r = sim.run(20_000);
            assert_eq!(r.errors, 0, "{pvt}");
            assert_eq!(r.shadow_violations, 0);
            // At nominal with no errors, DVS energy == baseline.
            assert!((r.energy_gain()).abs() < 1e-9);
        }
    }

    #[test]
    fn controller_run_keeps_error_rate_near_band() {
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Crafty.trace(5), ctrl);
        let r = sim.run(300_000);
        assert_eq!(r.shadow_violations, 0);
        assert!(r.error_rate() < 0.03, "rate {}", r.error_rate());
        assert!(r.energy_gain() > 0.15, "gain {}", r.energy_gain());
        assert!(r.min_voltage < Millivolts::new(1_100));
    }

    /// Differential harness: batched [`BusSimulator::run`] against the
    /// cycle-at-a-time [`BusSimulator::run_reference`] over the same
    /// trace/governor. Error and violation counts must be bit-identical,
    /// energies within 1e-9 relative (accumulation order differs), and
    /// the sampled trajectory must match window-for-window.
    fn assert_batched_matches_reference<G: VoltageGovernor + Clone>(
        d: &DvsBusDesign,
        pvt: PvtCorner,
        bench: Benchmark,
        seed: u64,
        governor: G,
        cycles: u64,
        sampling: Option<u64>,
    ) {
        let build = |g: G| {
            let sim = BusSimulator::new(d, pvt, bench.trace(seed), g);
            match sampling {
                Some(w) => sim.with_sampling(w),
                None => sim,
            }
        };
        let fast = build(governor.clone()).run(cycles);
        let slow = build(governor).run_reference(cycles);

        let ctx = format!("{bench} @ {pvt}, {cycles} cycles");
        assert_eq!(fast.errors, slow.errors, "errors diverged: {ctx}");
        assert_eq!(
            fast.shadow_violations, slow.shadow_violations,
            "violations diverged: {ctx}"
        );
        assert_eq!(fast.min_voltage, slow.min_voltage, "min V diverged: {ctx}");
        let rel_energy = (fast.energy.fj() - slow.energy.fj()).abs() / slow.energy.fj();
        assert!(rel_energy < 1e-9, "energy diverged {rel_energy}: {ctx}");
        let rel_base = (fast.baseline_energy.fj() - slow.baseline_energy.fj()).abs()
            / slow.baseline_energy.fj();
        assert!(rel_base < 1e-9, "baseline diverged {rel_base}: {ctx}");
        assert!(
            (fast.mean_voltage_mv - slow.mean_voltage_mv).abs() < 1e-9,
            "mean V diverged: {ctx}"
        );
        assert_eq!(
            fast.samples.len(),
            slow.samples.len(),
            "sample count diverged: {ctx}"
        );
        for (f, s) in fast.samples.iter().zip(&slow.samples) {
            assert_eq!(f.cycle, s.cycle, "{ctx}");
            assert_eq!(f.voltage, s.voltage, "sampled V diverged: {ctx}");
            assert!(
                (f.window_error_rate - s.window_error_rate).abs() < 1e-12,
                "window rate diverged at cycle {}: {ctx}",
                f.cycle
            );
        }
    }

    #[test]
    fn batched_matches_reference_fixed_voltage_300k() {
        let d = design();
        for (bench, v, seed) in [
            (Benchmark::Vortex, 940, 11),
            (Benchmark::Mgrid, 900, 5),
            (Benchmark::Crafty, 1_000, 7),
        ] {
            assert_batched_matches_reference(
                &d,
                PvtCorner::TYPICAL,
                bench,
                seed,
                FixedVoltage::new(Millivolts::new(v)),
                300_000,
                None,
            );
        }
    }

    #[test]
    fn batched_matches_reference_threshold_controller_300k() {
        let d = design();
        for (bench, seed) in [(Benchmark::Crafty, 5), (Benchmark::Mgrid, 3)] {
            let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
            assert_batched_matches_reference(
                &d,
                PvtCorner::TYPICAL,
                bench,
                seed,
                ctrl,
                300_000,
                Some(10_000),
            );
        }
    }

    #[test]
    fn batched_matches_reference_proportional_and_corners() {
        let d = design();
        // The proportional governor exercises its own batch override; the
        // worst corner exercises a different threshold matrix, and the
        // 17_500-cycle sampling window lands chunk boundaries away from
        // the controller's 10 k decision windows.
        let prop = razorbus_ctrl::ProportionalController::paper_band(
            d.controller_config(ProcessCorner::Typical),
        );
        assert_batched_matches_reference(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Gap,
            9,
            prop,
            300_000,
            Some(17_500),
        );
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Slow));
        assert_batched_matches_reference(
            &d,
            PvtCorner::WORST,
            Benchmark::Swim,
            2,
            ctrl,
            300_000,
            None,
        );
    }

    #[test]
    fn sim_matches_summary_for_fixed_voltage() {
        // The streaming simulator and the histogram engine must agree on
        // error counts and (closely) on energy for a fixed supply —
        // across benchmarks, corners and supplies.
        let d = design();
        for (bench, seed, pvt, v_mv) in [
            (Benchmark::Vortex, 11, PvtCorner::TYPICAL, 940),
            (Benchmark::Crafty, 3, PvtCorner::TYPICAL, 880),
            (Benchmark::Mgrid, 8, PvtCorner::WORST, 1_120),
            (Benchmark::Gap, 1, PvtCorner::TYPICAL, 1_200),
        ] {
            let v = Millivolts::new(v_mv);
            let mut sim = BusSimulator::new(&d, pvt, bench.trace(seed), FixedVoltage::new(v));
            let r = sim.run(50_000);
            let mut trace = bench.trace(seed);
            let s = crate::TraceSummary::collect(&d, &mut trace, 50_000);
            assert_eq!(r.errors, s.error_cycles(&d, pvt, v), "{bench} @ {v}");
            let e_summary = s.energy(&d, pvt, v, true);
            let rel = (r.energy.fj() - e_summary.fj()).abs() / e_summary.fj();
            assert!(rel < 1e-9, "energy mismatch {rel}: {bench} @ {v}");
        }
    }

    #[test]
    fn histogram_byproduct_matches_summary_collect() {
        // with_histogram must yield exactly what TraceSummary::collect
        // gathers over the same words — same integer counts, same float
        // accumulation order — even while a controller moves the supply.
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Crafty.trace(7), ctrl)
            .with_histogram();
        let r = sim.run(80_000);
        let from_sim = r.summary.expect("histogram requested");
        let mut trace = Benchmark::Crafty.trace(7);
        let collected = crate::TraceSummary::collect(&d, &mut trace, 80_000);
        assert_eq!(from_sim.cycles(), collected.cycles());
        assert_eq!(from_sim.mean_toggles(), collected.mean_toggles());
        for v in d.grid().iter() {
            for pvt in [PvtCorner::TYPICAL, PvtCorner::WORST] {
                assert_eq!(
                    from_sim.error_cycles(&d, pvt, v),
                    collected.error_cycles(&d, pvt, v),
                    "{pvt} @ {v}"
                );
            }
            let a = from_sim.energy(&d, PvtCorner::TYPICAL, v, true);
            let b = collected.energy(&d, PvtCorner::TYPICAL, v, true);
            assert_eq!(a.fj(), b.fj(), "energy at {v}");
        }
        // Without the flag, no summary is produced.
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Crafty.trace(7),
            FixedVoltage::new(Millivolts::new(1_200)),
        );
        assert!(sim.run(1_000).summary.is_none());
    }

    #[test]
    fn sampling_produces_expected_window_count() {
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Gap.trace(1), ctrl)
            .with_sampling(10_000);
        let r = sim.run(100_000);
        assert_eq!(r.samples.len(), 10);
        assert!(r.samples.iter().all(|s| s.voltage >= Millivolts::new(760)));
    }

    #[test]
    fn sampling_emits_trailing_partial_window() {
        // run(105_000) with 10 k sampling used to silently drop the last
        // 5 k cycles of trajectory; they now arrive as a final partial
        // sample whose rate is normalized by the partial length.
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Gap.trace(1), ctrl)
            .with_sampling(10_000);
        let r = sim.run(105_000);
        assert_eq!(r.samples.len(), 11);
        let last = r.samples.last().unwrap();
        assert_eq!(last.cycle, 105_000);
        assert!(last.window_error_rate >= 0.0 && last.window_error_rate <= 1.0);
        // A partial window of 1 cycle is still reported, with a 0-or-1 rate.
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Gap.trace(1),
            FixedVoltage::new(Millivolts::new(1_200)),
        )
        .with_sampling(10_000);
        let r = sim.run(10_001);
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[1].cycle, 10_001);
    }

    /// Differential harness for the compiled-replay path: compiling a
    /// trace once and replaying it must be **bit-identical** to running
    /// the simulator over the live words — errors, violations and
    /// samples bitwise, energies exact (same per-cycle add sequence),
    /// histogram by-product included.
    fn assert_replay_matches_run<G: VoltageGovernor + Clone>(
        d: &DvsBusDesign,
        pvt: PvtCorner,
        bench: Benchmark,
        seed: u64,
        governor: G,
        cycles: u64,
        sampling: Option<u64>,
    ) {
        let mut sim = BusSimulator::new(d, pvt, bench.trace(seed), governor.clone());
        if let Some(w) = sampling {
            sim = sim.with_sampling(w);
        }
        let live = sim.with_histogram().run(cycles);

        let compiled = crate::CompiledTrace::compile(d, &mut bench.trace(seed), cycles);
        let (replayed, _) = compiled.replay(d, pvt, governor, sampling, true);

        let ctx = format!("{bench} @ {pvt}, {cycles} cycles");
        assert_eq!(live.errors, replayed.errors, "errors diverged: {ctx}");
        assert_eq!(
            live.shadow_violations, replayed.shadow_violations,
            "violations diverged: {ctx}"
        );
        assert_eq!(
            live.energy.fj().to_bits(),
            replayed.energy.fj().to_bits(),
            "energy not exact: {ctx}"
        );
        assert_eq!(
            live.baseline_energy.fj().to_bits(),
            replayed.baseline_energy.fj().to_bits(),
            "baseline not exact: {ctx}"
        );
        assert_eq!(live.min_voltage, replayed.min_voltage, "{ctx}");
        assert_eq!(
            live.mean_voltage_mv.to_bits(),
            replayed.mean_voltage_mv.to_bits(),
            "mean V not exact: {ctx}"
        );
        assert_eq!(live.samples, replayed.samples, "samples diverged: {ctx}");
        assert_eq!(
            live.summary, replayed.summary,
            "histogram by-product diverged: {ctx}"
        );
    }

    #[test]
    fn replay_matches_run_across_governors() {
        let d = design();
        assert_replay_matches_run(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Crafty,
            5,
            ThresholdController::new(d.controller_config(ProcessCorner::Typical)),
            120_000,
            Some(10_000),
        );
        assert_replay_matches_run(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Gap,
            9,
            razorbus_ctrl::ProportionalController::paper_band(
                d.controller_config(ProcessCorner::Typical),
            ),
            120_000,
            Some(17_500),
        );
        assert_replay_matches_run(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Mgrid,
            5,
            FixedVoltage::new(Millivolts::new(900)),
            60_000,
            None,
        );
    }

    #[test]
    fn replay_matches_run_across_corners_and_designs() {
        // The worst corner exercises a different threshold matrix; the
        // modified bus exercises rebuilt tables and a different compile.
        let d = design();
        assert_replay_matches_run(
            &d,
            PvtCorner::WORST,
            Benchmark::Swim,
            2,
            ThresholdController::new(d.controller_config(ProcessCorner::Slow)),
            120_000,
            None,
        );
        let modified = DvsBusDesign::modified_paper_bus();
        assert_replay_matches_run(
            &modified,
            PvtCorner::WORST,
            Benchmark::Vortex,
            11,
            ThresholdController::new(modified.controller_config(ProcessCorner::Slow)),
            60_000,
            Some(10_000),
        );
    }

    #[test]
    fn one_compile_serves_many_operating_points() {
        // The cross-sweep reuse contract: a single compiled trace
        // replayed at several supplies reproduces each fixed-voltage
        // live run exactly.
        let d = design();
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Mgrid.trace(8), 40_000);
        for v_mv in [880, 940, 1_000, 1_200] {
            let v = Millivolts::new(v_mv);
            let mut sim = BusSimulator::new(
                &d,
                PvtCorner::TYPICAL,
                Benchmark::Mgrid.trace(8),
                FixedVoltage::new(v),
            );
            let live = sim.run(40_000);
            let (replayed, _) =
                compiled.replay(&d, PvtCorner::TYPICAL, FixedVoltage::new(v), None, false);
            assert_eq!(live.errors, replayed.errors, "{v}");
            assert_eq!(
                live.energy.fj().to_bits(),
                replayed.energy.fj().to_bits(),
                "{v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong design")]
    fn replay_refuses_mismatched_design() {
        let d = design();
        let modified = DvsBusDesign::modified_paper_bus();
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(1), 1_000);
        let _ = compiled.replay(
            &modified,
            PvtCorner::TYPICAL,
            FixedVoltage::new(Millivolts::new(1_200)),
            None,
            false,
        );
    }

    #[test]
    fn worst_corner_nominal_baseline_sane() {
        // At the design corner with a fixed 1.2 V supply, gain is ~0 and
        // errors are impossible.
        let d = design();
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::WORST,
            Benchmark::Mgrid.trace(2),
            FixedVoltage::new(Millivolts::new(1_200)),
        );
        let r = sim.run(20_000);
        assert_eq!(r.errors, 0);
        assert!(r.energy.fj() > 0.0);
    }

    /// Differential harness for the lane-vectorized kernel: `replay`
    /// (u64 lanes) against `replay_scalar` (the per-cycle reference
    /// body) over the same compiled trace and governor — every reported
    /// number must match to the bit, including the sampled trajectory.
    fn assert_vectorized_matches_scalar<G: VoltageGovernor + Clone>(
        d: &DvsBusDesign,
        pvt: PvtCorner,
        bench: Benchmark,
        seed: u64,
        governor: G,
        cycles: u64,
        sampling: Option<u64>,
    ) {
        let compiled = crate::CompiledTrace::compile(d, &mut bench.trace(seed), cycles);
        let (fast, _) = compiled.replay(d, pvt, governor.clone(), sampling, false);
        let (slow, _) = compiled.replay_scalar(d, pvt, governor, sampling, false);
        let ctx = format!("{bench} @ {pvt}, {cycles} cycles");
        assert_eq!(fast.errors, slow.errors, "errors diverged: {ctx}");
        assert_eq!(
            fast.shadow_violations, slow.shadow_violations,
            "violations diverged: {ctx}"
        );
        assert_eq!(
            fast.energy.fj().to_bits(),
            slow.energy.fj().to_bits(),
            "energy not exact: {ctx}"
        );
        assert_eq!(
            fast.baseline_energy.fj().to_bits(),
            slow.baseline_energy.fj().to_bits(),
            "baseline not exact: {ctx}"
        );
        assert_eq!(fast.min_voltage, slow.min_voltage, "{ctx}");
        assert_eq!(
            fast.mean_voltage_mv.to_bits(),
            slow.mean_voltage_mv.to_bits(),
            "mean V not exact: {ctx}"
        );
        assert_eq!(fast.samples.len(), slow.samples.len(), "{ctx}");
        for (f, s) in fast.samples.iter().zip(&slow.samples) {
            assert_eq!(f.cycle, s.cycle, "{ctx}");
            assert_eq!(f.voltage, s.voltage, "{ctx}");
            assert_eq!(
                f.window_error_rate.to_bits(),
                s.window_error_rate.to_bits(),
                "window rate not exact at cycle {}: {ctx}",
                f.cycle
            );
        }
    }

    #[test]
    fn vectorized_replay_matches_scalar_across_governors() {
        // Each governor shapes chunks differently: the threshold
        // controller's decision windows, the proportional variant's
        // batch override, and a fixed supply's single maximal chunk
        // (one lane run over the whole trace, tail included).
        let d = design();
        assert_vectorized_matches_scalar(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Crafty,
            5,
            ThresholdController::new(d.controller_config(ProcessCorner::Typical)),
            120_000,
            Some(10_000),
        );
        assert_vectorized_matches_scalar(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Gap,
            9,
            razorbus_ctrl::ProportionalController::paper_band(
                d.controller_config(ProcessCorner::Typical),
            ),
            120_000,
            Some(17_500),
        );
        assert_vectorized_matches_scalar(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Mgrid,
            5,
            FixedVoltage::new(Millivolts::new(900)),
            60_007, // deliberately not a multiple of the 8-cycle lane
            None,
        );
    }

    #[test]
    fn vectorized_replay_matches_scalar_across_corners_and_designs() {
        // The worst corner requantizes a different threshold matrix;
        // the modified bus stresses different bins; idle-heavy swim
        // exercises the quiet-lane skip at scale.
        let d = design();
        assert_vectorized_matches_scalar(
            &d,
            PvtCorner::WORST,
            Benchmark::Swim,
            2,
            ThresholdController::new(d.controller_config(ProcessCorner::Slow)),
            120_000,
            None,
        );
        let modified = DvsBusDesign::modified_paper_bus();
        assert_vectorized_matches_scalar(
            &modified,
            PvtCorner::WORST,
            Benchmark::Vortex,
            11,
            ThresholdController::new(modified.controller_config(ProcessCorner::Slow)),
            60_000,
            Some(10_000),
        );
        assert_vectorized_matches_scalar(
            &modified,
            PvtCorner::TYPICAL,
            Benchmark::Gap,
            1,
            FixedVoltage::new(Millivolts::new(1_000)),
            40_000,
            None,
        );
    }

    #[test]
    fn vectorized_replay_matches_live_run_without_histogram() {
        // The lane path end-to-end against the live simulator (the
        // existing replay harness pins the histogram/scalar path; this
        // pins the vectorized one).
        let d = design();
        let cycles = 80_000;
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Crafty.trace(7), ctrl);
        let live = sim.run(cycles);
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(7), cycles);
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let (replayed, _) = compiled.replay(&d, PvtCorner::TYPICAL, ctrl, None, false);
        assert_eq!(live.errors, replayed.errors);
        assert_eq!(live.shadow_violations, replayed.shadow_violations);
        assert_eq!(live.energy.fj().to_bits(), replayed.energy.fj().to_bits());
        assert_eq!(
            live.baseline_energy.fj().to_bits(),
            replayed.baseline_energy.fj().to_bits()
        );
        assert_eq!(
            live.mean_voltage_mv.to_bits(),
            replayed.mean_voltage_mv.to_bits()
        );
    }

    #[test]
    fn histogram_replay_takes_the_scalar_body_and_matches() {
        // `with_summary` falls back to the scalar chunk body; its
        // report (histogram included) must equal the scalar replay's
        // exactly.
        let d = design();
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Mgrid.trace(8), 40_000);
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let (fast, _) = compiled.replay(&d, PvtCorner::TYPICAL, ctrl.clone(), Some(10_000), true);
        let (slow, _) = compiled.replay_scalar(&d, PvtCorner::TYPICAL, ctrl, Some(10_000), true);
        assert_eq!(fast.summary, slow.summary);
        assert_eq!(fast.energy.fj().to_bits(), slow.energy.fj().to_bits());
        assert_eq!(fast.samples, slow.samples);
    }

    /// Differential harness for the fused replay: one
    /// [`CompiledTrace::replay_fused`] pass over an operating-point
    /// matrix against each member's solo [`CompiledTrace::replay`]
    /// under [`FixedVoltage`] — every reported number must match to the
    /// bit, sampled trajectories included.
    fn assert_fused_matches_solo(
        d: &DvsBusDesign,
        bench: Benchmark,
        seed: u64,
        ops: &[FusedOp],
        cycles: u64,
        sampling: Option<u64>,
    ) {
        let compiled = crate::CompiledTrace::compile(d, &mut bench.trace(seed), cycles);
        let fused = compiled.replay_fused(d, ops, sampling);
        assert_eq!(fused.len(), ops.len());
        for (op, f) in ops.iter().zip(&fused) {
            let (s, _) = compiled.replay(d, op.pvt, FixedVoltage::new(op.supply), sampling, false);
            let ctx = format!(
                "{bench} @ {} {}, fan-in {}, {cycles} cycles",
                op.pvt,
                op.supply,
                ops.len()
            );
            assert_eq!(f.cycles, s.cycles, "{ctx}");
            assert_eq!(f.errors, s.errors, "errors diverged: {ctx}");
            assert_eq!(
                f.shadow_violations, s.shadow_violations,
                "violations diverged: {ctx}"
            );
            assert_eq!(
                f.energy.fj().to_bits(),
                s.energy.fj().to_bits(),
                "energy not exact: {ctx}"
            );
            assert_eq!(
                f.baseline_energy.fj().to_bits(),
                s.baseline_energy.fj().to_bits(),
                "baseline not exact: {ctx}"
            );
            assert_eq!(f.min_voltage, s.min_voltage, "{ctx}");
            assert_eq!(
                f.mean_voltage_mv.to_bits(),
                s.mean_voltage_mv.to_bits(),
                "mean V not exact: {ctx}"
            );
            assert_eq!(f.samples.len(), s.samples.len(), "{ctx}");
            for (a, b) in f.samples.iter().zip(&s.samples) {
                assert_eq!(a.cycle, b.cycle, "{ctx}");
                assert_eq!(a.voltage, b.voltage, "{ctx}");
                assert_eq!(
                    a.window_error_rate.to_bits(),
                    b.window_error_rate.to_bits(),
                    "window rate not exact at cycle {}: {ctx}",
                    a.cycle
                );
            }
            assert!(f.summary.is_none(), "{ctx}");
        }
    }

    /// The Monte-Carlo-shaped matrix: `corners × supplies`, supplies on
    /// the 20 mV grid starting at 900 mV.
    fn op_matrix(corners: &[PvtCorner], supplies: usize) -> Vec<FusedOp> {
        corners
            .iter()
            .flat_map(|&pvt| {
                (0..supplies).map(move |k| FusedOp {
                    pvt,
                    supply: Millivolts::new(900 + 20 * k as i32),
                })
            })
            .collect()
    }

    #[test]
    fn fused_replay_matches_solo_across_fan_ins() {
        // Fan-in 1 (a singleton group still takes the fused path), 4
        // and 16 (the monte-carlo-dvs shape: 2 corners × 8 supplies),
        // with and without sampling, on an odd cycle count so the
        // trailing partial window and the lane tail are both exercised.
        let d = design();
        let corners = [PvtCorner::TYPICAL, PvtCorner::WORST];
        assert_fused_matches_solo(
            &d,
            Benchmark::Crafty,
            5,
            &op_matrix(&corners[..1], 1),
            60_007,
            Some(10_000),
        );
        assert_fused_matches_solo(
            &d,
            Benchmark::Mgrid,
            8,
            &op_matrix(&corners, 2),
            60_007,
            Some(10_000),
        );
        assert_fused_matches_solo(&d, Benchmark::Gap, 9, &op_matrix(&corners, 8), 60_007, None);
        assert_fused_matches_solo(
            &d,
            Benchmark::Swim,
            2,
            &op_matrix(&corners, 8),
            40_000,
            Some(17_500),
        );
    }

    #[test]
    fn fused_replay_matches_solo_on_the_modified_design() {
        // The modified bus rebuilds tables and stresses different bins;
        // the fused row cache must key corners correctly there too.
        let modified = DvsBusDesign::modified_paper_bus();
        assert_fused_matches_solo(
            &modified,
            Benchmark::Vortex,
            11,
            &op_matrix(&[PvtCorner::TYPICAL, PvtCorner::WORST], 4),
            60_000,
            Some(10_000),
        );
    }

    #[test]
    fn fused_replay_of_no_ops_is_empty() {
        let d = design();
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(1), 1_000);
        assert!(compiled.replay_fused(&d, &[], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "off the design grid")]
    fn fused_replay_refuses_an_off_grid_supply() {
        let d = design();
        let compiled = crate::CompiledTrace::compile(&d, &mut Benchmark::Crafty.trace(1), 1_000);
        let ops = [FusedOp {
            pvt: PvtCorner::TYPICAL,
            supply: Millivolts::new(905),
        }];
        let _ = compiled.replay_fused(&d, &ops, None);
    }

    #[test]
    fn performance_loss_equals_error_rate() {
        let d = design();
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Mgrid.trace(8),
            FixedVoltage::new(Millivolts::new(900)),
        );
        let r = sim.run(20_000);
        assert!(r.errors > 0, "expected errors at 900 mV for mgrid");
        assert!((r.performance_loss() - r.error_rate()).abs() < 1e-15);
    }
}
