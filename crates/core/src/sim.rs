//! Streaming closed-loop simulation: trace → bus → error detection →
//! governor, cycle by cycle, with full energy accounting.

use crate::design::DvsBusDesign;
use razorbus_ctrl::VoltageGovernor;
use razorbus_process::PvtCorner;
use razorbus_tables::EnvCondition;
use razorbus_traces::TraceSource;
use razorbus_units::{Femtojoules, Millivolts};

/// One sampled point of the supply/error trajectory (Fig. 8 material).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSample {
    /// Cycle index at the *end* of the sampled window.
    pub cycle: u64,
    /// Supply set-point at the sample instant.
    pub voltage: Millivolts,
    /// Error rate over the sampled window.
    pub window_error_rate: f64,
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Error (recovery) cycles.
    pub errors: u64,
    /// Silent-corruption cycles — must be zero for a sound design.
    pub shadow_violations: u64,
    /// Total energy with DVS (bus + flops + leakage + recovery).
    pub energy: Femtojoules,
    /// Energy the same trace would draw at the fixed nominal supply.
    pub baseline_energy: Femtojoules,
    /// Cycle-weighted mean supply (mV).
    pub mean_voltage_mv: f64,
    /// Lowest supply visited.
    pub min_voltage: Millivolts,
    /// Window-sampled trajectory (empty unless sampling was enabled).
    pub samples: Vec<VoltageSample>,
}

impl SimReport {
    /// Average error rate.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.errors as f64 / self.cycles as f64
        }
    }

    /// Energy gain over the nominal-supply baseline.
    #[must_use]
    pub fn energy_gain(&self) -> f64 {
        1.0 - self.energy / self.baseline_energy
    }

    /// IPC degradation under the paper's 1-cycle-penalty model (§3:
    /// "translate this to a reduction in performance (IPC) that is the
    /// same as the error-rate").
    #[must_use]
    pub fn performance_loss(&self) -> f64 {
        self.error_rate()
    }
}

/// The closed-loop simulator.
///
/// Generic over the trace source and the governor so the same loop runs
/// static sweeps ([`razorbus_ctrl::FixedVoltage`]), the paper controller
/// ([`razorbus_ctrl::ThresholdController`]) and the proportional variant.
#[derive(Debug)]
pub struct BusSimulator<'d, S, G> {
    design: &'d DvsBusDesign,
    pvt: PvtCorner,
    trace: S,
    governor: G,
    prev_word: u32,
    sample_every: Option<u64>,
}

impl<'d, S: TraceSource, G: VoltageGovernor> BusSimulator<'d, S, G> {
    /// Creates a simulator at the true environment `pvt`.
    #[must_use]
    pub fn new(design: &'d DvsBusDesign, pvt: PvtCorner, mut trace: S, governor: G) -> Self {
        let prev_word = trace.next_word();
        Self {
            design,
            pvt,
            trace,
            governor,
            prev_word,
            sample_every: None,
        }
    }

    /// Enables trajectory sampling every `window` cycles (Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn with_sampling(mut self, window: u64) -> Self {
        assert!(window > 0, "sampling window must be positive");
        self.sample_every = Some(window);
        self
    }

    /// Access to the governor (e.g. to read controller statistics).
    #[must_use]
    pub fn governor(&self) -> &G {
        &self.governor
    }

    /// Consumes the simulator, returning the governor.
    #[must_use]
    pub fn into_governor(self) -> G {
        self.governor
    }

    /// Runs `cycles` cycles and reports.
    ///
    /// # Panics
    ///
    /// Panics if the governor commands a voltage off the design grid.
    pub fn run(&mut self, cycles: u64) -> SimReport {
        let design = self.design;
        let grid = design.grid();
        let tables = design.tables();
        let cond = EnvCondition::from_pvt(self.pvt);
        let matrix = tables.threshold_matrix(cond, self.pvt.ir);
        let shadow_matrix = tables.shadow_threshold_matrix(cond, self.pvt.ir);
        let energy_table = tables.energy_table(cond);
        let bus = design.bus();
        let fe = design.flop_energy();

        let n_flops = tables.n_bits();
        let length_mm = bus.line().total_length().mm();
        let rep_cap = tables.repeater_cap_per_toggle().ff();
        let clock_cap = fe.clock_capacitance(n_flops).ff();
        let data_cap = fe.data_capacitance().ff();
        // Recovery ~ one extra bank clock + one restored bit (paper: the
        // extra clocking dominates).
        let recovery_cap = clock_cap + data_cap;

        let nominal_idx = grid.index_of(design.nominal()).expect("nominal on grid");
        let v2_nominal = energy_table.v_squared_at(nominal_idx);
        let leak_nominal = energy_table.leakage_per_cycle_at(nominal_idx).fj();

        let mut errors = 0u64;
        let mut shadow_violations = 0u64;
        let mut energy_fj = 0.0f64;
        let mut baseline_fj = 0.0f64;
        let mut mv_sum = 0.0f64;
        let mut min_v = self.governor.voltage();
        let mut samples = Vec::new();
        let mut window_errors = 0u64;
        let mut window_cycles = 0u64;

        for cycle in 0..cycles {
            let v = self.governor.voltage();
            let vi = grid
                .index_of(v)
                .unwrap_or_else(|| panic!("governor voltage {v} off grid"));
            let cur = self.trace.next_word();
            let analysis = bus.analyze_cycle(self.prev_word, cur);
            self.prev_word = cur;

            let bucket = (analysis.toggled_wires / 4).min(8) as usize;
            // Quantized exactly like the histogram engine (1 fF/mm bins)
            // so the two agree cycle-for-cycle.
            let error = analysis.toggled_wires > 0
                && crate::summary::ceff_bin_floor(analysis.worst_ceff_per_mm)
                    > matrix.pass_limit_at(vi, bucket);
            if error {
                errors += 1;
                if crate::summary::ceff_bin_floor(analysis.worst_ceff_per_mm)
                    > shadow_matrix.pass_limit_at(vi, bucket)
                {
                    shadow_violations += 1;
                }
            }

            let v2 = energy_table.v_squared_at(vi);
            let toggles = f64::from(analysis.toggled_wires);
            let switched = analysis.switched_cap_per_mm * length_mm
                + toggles * (rep_cap + data_cap)
                + clock_cap;
            energy_fj += switched * v2 + energy_table.leakage_per_cycle_at(vi).fj();
            if error {
                energy_fj += recovery_cap * v2;
            }
            baseline_fj += switched * v2_nominal + leak_nominal;

            mv_sum += f64::from(v.mv());
            min_v = min_v.min(v);
            self.governor.record_cycle(error);

            if let Some(window) = self.sample_every {
                window_errors += u64::from(error);
                window_cycles += 1;
                if window_cycles == window {
                    samples.push(VoltageSample {
                        cycle: cycle + 1,
                        voltage: self.governor.voltage(),
                        window_error_rate: window_errors as f64 / window as f64,
                    });
                    window_errors = 0;
                    window_cycles = 0;
                }
            }
        }

        SimReport {
            cycles,
            errors,
            shadow_violations,
            energy: Femtojoules::new(energy_fj),
            baseline_energy: Femtojoules::new(baseline_fj),
            mean_voltage_mv: if cycles == 0 {
                0.0
            } else {
                mv_sum / cycles as f64
            },
            min_voltage: min_v,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use razorbus_ctrl::{FixedVoltage, ThresholdController};
    use razorbus_process::ProcessCorner;
    use razorbus_traces::Benchmark;

    fn design() -> DvsBusDesign {
        DvsBusDesign::paper_default()
    }

    #[test]
    fn nominal_fixed_run_is_error_free_everywhere() {
        let d = design();
        for pvt in PvtCorner::FIG5 {
            let mut sim = BusSimulator::new(
                &d,
                pvt,
                Benchmark::Swim.trace(3),
                FixedVoltage::new(Millivolts::new(1_200)),
            );
            let r = sim.run(20_000);
            assert_eq!(r.errors, 0, "{pvt}");
            assert_eq!(r.shadow_violations, 0);
            // At nominal with no errors, DVS energy == baseline.
            assert!((r.energy_gain()).abs() < 1e-9);
        }
    }

    #[test]
    fn controller_run_keeps_error_rate_near_band() {
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Crafty.trace(5), ctrl);
        let r = sim.run(300_000);
        assert_eq!(r.shadow_violations, 0);
        assert!(r.error_rate() < 0.03, "rate {}", r.error_rate());
        assert!(r.energy_gain() > 0.15, "gain {}", r.energy_gain());
        assert!(r.min_voltage < Millivolts::new(1_100));
    }

    #[test]
    fn sim_matches_summary_for_fixed_voltage() {
        // The streaming simulator and the histogram engine must agree on
        // error counts and (closely) on energy for a fixed supply.
        let d = design();
        let v = Millivolts::new(940);
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Vortex.trace(11),
            FixedVoltage::new(v),
        );
        let r = sim.run(50_000);
        let mut trace = Benchmark::Vortex.trace(11);
        let s = crate::TraceSummary::collect(&d, &mut trace, 50_000);
        assert_eq!(r.errors, s.error_cycles(&d, PvtCorner::TYPICAL, v));
        let e_summary = s.energy(&d, PvtCorner::TYPICAL, v, true);
        let rel = (r.energy.fj() - e_summary.fj()).abs() / e_summary.fj();
        assert!(rel < 1e-9, "energy mismatch {rel}");
    }

    #[test]
    fn sampling_produces_expected_window_count() {
        let d = design();
        let ctrl = ThresholdController::new(d.controller_config(ProcessCorner::Typical));
        let mut sim = BusSimulator::new(&d, PvtCorner::TYPICAL, Benchmark::Gap.trace(1), ctrl)
            .with_sampling(10_000);
        let r = sim.run(100_000);
        assert_eq!(r.samples.len(), 10);
        assert!(r.samples.iter().all(|s| s.voltage >= Millivolts::new(760)));
    }

    #[test]
    fn worst_corner_nominal_baseline_sane() {
        // At the design corner with a fixed 1.2 V supply, gain is ~0 and
        // errors are impossible.
        let d = design();
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::WORST,
            Benchmark::Mgrid.trace(2),
            FixedVoltage::new(Millivolts::new(1_200)),
        );
        let r = sim.run(20_000);
        assert_eq!(r.errors, 0);
        assert!(r.energy.fj() > 0.0);
    }

    #[test]
    fn performance_loss_equals_error_rate() {
        let d = design();
        let mut sim = BusSimulator::new(
            &d,
            PvtCorner::TYPICAL,
            Benchmark::Mgrid.trace(8),
            FixedVoltage::new(Millivolts::new(900)),
        );
        let r = sim.run(20_000);
        assert!(r.errors > 0, "expected errors at 900 mV for mgrid");
        assert!((r.performance_loss() - r.error_rate()).abs() < 1e-15);
    }
}
