//! Lane-vectorized replay kernel: the integer half of the compiled-trace
//! inner loop, processed eight cycles at a time with u64 bit-tricks.
//!
//! The compiled stream is branch-free struct-of-arrays data — per-cycle
//! `(toggles u8, load-bin u16, switched-cap f64)` — and the per-cycle
//! classification the hot loop performs on it reduces to integers once
//! the supply row's float pass limits are requantized:
//!
//! * `load > pass[bucket]` with `load = bin · CEFF_BIN_WIDTH` is
//!   monotone in the bin, so each `(supply, toggle count)` pair has a
//!   **minimal erroring bin**; the float comparison becomes
//!   `bin >= err_bin[toggles]` — exactly, for every representable bin
//!   (see [`LaneThresholds`]).
//! * Eight toggle bytes load as one `u64`; their sum folds with two
//!   masked adds and a multiply. Four 16-bit bins compare against four
//!   packed thresholds in one borrow-free SWAR subtraction, yielding one
//!   result bit per field ([`swar_ge4`]); `count_ones` turns the masks
//!   into error/violation counts.
//!
//! The float work is deliberately **not** vectorized: the switched-cap
//! accumulation keeps the scalar loop's exact add sequence (f64 addition
//! is not associative), so replay results stay bit-identical to the
//! scalar body — pinned by the differential tests in `sim.rs` and by the
//! unit tests below. The only elision is whole-lanes of quiet cycles,
//! whose contributions are all `+0.0` by the format's quiet-cycle
//! invariant and therefore cannot change a non-negative accumulator
//! bitwise.

use crate::summary::{bucket_of, CEFF_BIN_WIDTH, N_BUCKETS, N_CEFF_BINS};

/// Cycles per vector lane: eight `u8` toggle counts per `u64`.
const LANE: usize = 8;

/// Widest bus the compiled format admits (toggle counts are validated
/// `<= n_bits <= 32` on both compile and deserialize), so threshold
/// tables indexed directly by toggle count need `MAX_TOGGLES + 1` slots.
pub(crate) const MAX_TOGGLES: usize = 32;

/// Sentinel threshold meaning "no stored bin errors here": every valid
/// bin is `< N_CEFF_BINS`, so `bin >= NEVER` is false for all of them.
/// Doubles as the toggle-count-zero entry (a quiet cycle never errors).
const NEVER: u16 = N_CEFF_BINS as u16;

/// Alternating-byte mask for the pairwise step of the toggle-byte sum.
const PAIR_MASK: u64 = 0x00FF_00FF_00FF_00FF;

/// The spare top bit of each 16-bit field — both operands of
/// [`swar_ge4`] stay below `0x8000`, so the bit is free to carry the
/// per-field comparison result.
const FIELD_TOP: u64 = 0x8000_8000_8000_8000;

/// Per-cycle error/shadow decisions of one supply grid point, requantized
/// to integer bin thresholds and indexed directly by toggle count.
///
/// `err_bin[t]` is the smallest bin whose reconstructed load
/// (`bin as f64 * CEFF_BIN_WIDTH`) exceeds the row's pass limit for
/// toggle count `t`'s activity bucket — so `bin >= err_bin[t]`
/// reproduces the scalar loop's `toggles > 0 && load > pass[bucket]`
/// exactly: the reconstruction is monotone in the bin, the threshold is
/// found with the *same* float comparison, and `t == 0` maps to
/// [`NEVER`]. `shadow_bin` is the same requantization of the shadow
/// limits; the shadow decision additionally requires the error decision
/// (the scalar loop short-circuits on `error`), which the caller
/// preserves by AND-ing the two masks.
pub(crate) struct LaneThresholds {
    err_bin: [u16; MAX_TOGGLES + 1],
    shadow_bin: [u16; MAX_TOGGLES + 1],
}

impl LaneThresholds {
    /// Requantizes one supply row's per-bucket float limits.
    pub(crate) fn from_limits(pass: &[f64; N_BUCKETS], shadow: &[f64; N_BUCKETS]) -> Self {
        let mut thr = Self {
            err_bin: [NEVER; MAX_TOGGLES + 1],
            shadow_bin: [NEVER; MAX_TOGGLES + 1],
        };
        for toggles in 1..=MAX_TOGGLES {
            let bucket = bucket_of(toggles as u32);
            thr.err_bin[toggles] = min_exceeding_bin(pass[bucket]);
            thr.shadow_bin[toggles] = min_exceeding_bin(shadow[bucket]);
        }
        thr
    }
}

/// The smallest bin whose reconstructed load exceeds `limit`, using the
/// identical float comparison the scalar loop performs — or [`NEVER`]
/// when no representable bin does.
fn min_exceeding_bin(limit: f64) -> u16 {
    (0..NEVER)
        .find(|&bin| f64::from(bin) * CEFF_BIN_WIDTH > limit)
        .unwrap_or(NEVER)
}

/// One chunk's worth of inner-loop accumulators — the exact quantities
/// the batched loop folds into energy/error totals per chunk.
#[derive(Debug, Default, PartialEq)]
pub(crate) struct LaneAccum {
    /// Error (recovery) cycles in the chunk.
    pub errors: u64,
    /// Shadow-latch violations in the chunk.
    pub shadow: u64,
    /// Total toggled wires in the chunk.
    pub toggles: u64,
    /// Switched wire capacitance (fF/mm), summed in cycle order.
    pub wire_cap: f64,
}

/// Per-member integer counts of one fused chunk: the member-*dependent*
/// half of [`LaneAccum`]. The toggle sum and capacitance accumulation
/// are member-independent (they never consult a threshold table), so
/// [`process_fused`] computes them once for the whole group and returns
/// them alongside these per-member counts.
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct FusedCounts {
    /// Error (recovery) cycles in the chunk, for this member.
    pub errors: u64,
    /// Shadow-latch violations in the chunk, for this member.
    pub shadow: u64,
}

/// Classifies `toggles.len()` cycles against `thr`, eight per iteration.
///
/// Bit-identical to the scalar loop body over the same slices: the
/// integer counts are exact by construction, and the capacitance sum
/// visits the same values in the same order (quiet lanes are skipped
/// only because all-zero toggles imply all-`+0.0` capacitances, which
/// cannot change a non-negative f64 accumulator bitwise).
pub(crate) fn process(
    toggles: &[u8],
    bins: &[u16],
    switched: &[f64],
    thr: &LaneThresholds,
) -> LaneAccum {
    debug_assert_eq!(toggles.len(), bins.len());
    debug_assert_eq!(toggles.len(), switched.len());
    let mut acc = LaneAccum::default();
    let lanes = toggles.len() / LANE;
    for lane in 0..lanes {
        let base = lane * LANE;
        let t8: [u8; LANE] = toggles[base..base + LANE].try_into().expect("lane width");
        let t64 = u64::from_le_bytes(t8);
        if t64 == 0 {
            continue;
        }
        // Toggle sum: fold eight bytes (each <= 32) into adjacent 16-bit
        // fields, then sum the four fields with one widening multiply
        // (total <= 256, no field overflow at any step).
        let pairs = (t64 & PAIR_MASK) + ((t64 >> 8) & PAIR_MASK);
        acc.toggles += pairs.wrapping_mul(0x0001_0001_0001_0001) >> 48;

        // Error/shadow: gather each cycle's thresholds by toggle count,
        // compare four packed bins per SWAR op, one decision bit per
        // field. The shadow decision is gated on the error decision,
        // exactly like the scalar short-circuit.
        let bins_lo = pack4(bins[base..base + 4].try_into().expect("lane half"));
        let bins_hi = pack4(bins[base + 4..base + LANE].try_into().expect("lane half"));
        let err_lo = gather4(&t8[0..4], &thr.err_bin);
        let err_hi = gather4(&t8[4..LANE], &thr.err_bin);
        let sh_lo = gather4(&t8[0..4], &thr.shadow_bin);
        let sh_hi = gather4(&t8[4..LANE], &thr.shadow_bin);
        let ge_err_lo = swar_ge4(bins_lo, err_lo);
        let ge_err_hi = swar_ge4(bins_hi, err_hi);
        acc.errors += u64::from(ge_err_lo.count_ones() + ge_err_hi.count_ones());
        acc.shadow += u64::from(
            (ge_err_lo & swar_ge4(bins_lo, sh_lo)).count_ones()
                + (ge_err_hi & swar_ge4(bins_hi, sh_hi)).count_ones(),
        );

        // The float half stays serial: same values, same add order.
        for &cap in &switched[base..base + LANE] {
            acc.wire_cap += cap;
        }
    }
    for c in lanes * LANE..toggles.len() {
        let error = bins[c] >= thr.err_bin[usize::from(toggles[c])];
        acc.errors += u64::from(error);
        acc.shadow += u64::from(error && bins[c] >= thr.shadow_bin[usize::from(toggles[c])]);
        acc.toggles += u64::from(toggles[c]);
        acc.wire_cap += switched[c];
    }
    acc
}

/// The fused-replay kernel: classifies `toggles.len()` cycles against
/// *every* member's thresholds in one pass, while each lane's words are
/// hot in registers/L1. Returns the member-independent `(toggle sum,
/// switched-capacitance sum)` pair and writes each member's
/// error/violation counts into its `counts` slot.
///
/// Per member, the decisions are exactly [`process`]'s: the same packed
/// bins compare against the member's own gathered thresholds with the
/// same SWAR ops, the scalar tail evaluates the same comparisons, and
/// the quiet-lane skip is member-independent (`err_bin[0]` is [`NEVER`]
/// for every threshold table, and the capacitance elision is the same
/// all-`+0.0` argument as in [`process`]) — so a fused member's counts
/// are bit-identical to its solo run by construction, pinned by the
/// differential test below and the replay differentials in `sim.rs`.
pub(crate) fn process_fused(
    toggles: &[u8],
    bins: &[u16],
    switched: &[f64],
    thrs: &[LaneThresholds],
    counts: &mut [FusedCounts],
) -> (u64, f64) {
    debug_assert_eq!(toggles.len(), bins.len());
    debug_assert_eq!(toggles.len(), switched.len());
    debug_assert_eq!(thrs.len(), counts.len());
    for c in counts.iter_mut() {
        *c = FusedCounts::default();
    }
    let mut toggle_sum = 0u64;
    let mut wire_cap = 0.0f64;
    let lanes = toggles.len() / LANE;
    for lane in 0..lanes {
        let base = lane * LANE;
        let t8: [u8; LANE] = toggles[base..base + LANE].try_into().expect("lane width");
        let t64 = u64::from_le_bytes(t8);
        if t64 == 0 {
            continue;
        }
        let pairs = (t64 & PAIR_MASK) + ((t64 >> 8) & PAIR_MASK);
        toggle_sum += pairs.wrapping_mul(0x0001_0001_0001_0001) >> 48;

        // One bin pack serves every member; the gathers and compares
        // run per member against its own requantized tables.
        let bins_lo = pack4(bins[base..base + 4].try_into().expect("lane half"));
        let bins_hi = pack4(bins[base + 4..base + LANE].try_into().expect("lane half"));
        for (thr, cnt) in thrs.iter().zip(counts.iter_mut()) {
            let err_lo = gather4(&t8[0..4], &thr.err_bin);
            let err_hi = gather4(&t8[4..LANE], &thr.err_bin);
            let sh_lo = gather4(&t8[0..4], &thr.shadow_bin);
            let sh_hi = gather4(&t8[4..LANE], &thr.shadow_bin);
            let ge_err_lo = swar_ge4(bins_lo, err_lo);
            let ge_err_hi = swar_ge4(bins_hi, err_hi);
            cnt.errors += u64::from(ge_err_lo.count_ones() + ge_err_hi.count_ones());
            cnt.shadow += u64::from(
                (ge_err_lo & swar_ge4(bins_lo, sh_lo)).count_ones()
                    + (ge_err_hi & swar_ge4(bins_hi, sh_hi)).count_ones(),
            );
        }

        for &cap in &switched[base..base + LANE] {
            wire_cap += cap;
        }
    }
    for c in lanes * LANE..toggles.len() {
        toggle_sum += u64::from(toggles[c]);
        wire_cap += switched[c];
        for (thr, cnt) in thrs.iter().zip(counts.iter_mut()) {
            let error = bins[c] >= thr.err_bin[usize::from(toggles[c])];
            cnt.errors += u64::from(error);
            cnt.shadow += u64::from(error && bins[c] >= thr.shadow_bin[usize::from(toggles[c])]);
        }
    }
    (toggle_sum, wire_cap)
}

/// Packs four 16-bit bins into one u64, field 0 in the low bits.
#[inline]
fn pack4(v: [u16; 4]) -> u64 {
    u64::from(v[0]) | u64::from(v[1]) << 16 | u64::from(v[2]) << 32 | u64::from(v[3]) << 48
}

/// Gathers four threshold fields by toggle count and packs them.
#[inline]
fn gather4(t: &[u8], table: &[u16; MAX_TOGGLES + 1]) -> u64 {
    pack4([
        table[usize::from(t[0])],
        table[usize::from(t[1])],
        table[usize::from(t[2])],
        table[usize::from(t[3])],
    ])
}

/// Per-field `a >= b` over four 16-bit fields, one result bit (the
/// field's top bit) per field.
///
/// Both operands hold values `< 0x8000` (bins and thresholds are
/// `<= 512`), so setting each `a`-field's spare top bit guarantees the
/// per-field subtraction never borrows across fields; the bit survives
/// exactly when `a_field >= b_field`.
#[inline]
fn swar_ge4(a: u64, b: u64) -> u64 {
    ((a | FIELD_TOP) - b) & FIELD_TOP
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar loop body over the same slices — the semantic
    /// reference `process` is pinned to, written with the *original*
    /// float comparison so the requantization itself is under test.
    fn scalar_reference(
        toggles: &[u8],
        bins: &[u16],
        switched: &[f64],
        pass: &[f64; N_BUCKETS],
        shadow: &[f64; N_BUCKETS],
    ) -> LaneAccum {
        let mut acc = LaneAccum::default();
        for c in 0..toggles.len() {
            let t = u32::from(toggles[c]);
            let bucket = bucket_of(t);
            let load = usize::from(bins[c]) as f64 * CEFF_BIN_WIDTH;
            let error = t > 0 && load > pass[bucket];
            acc.errors += u64::from(error);
            acc.shadow += u64::from(error && load > shadow[bucket]);
            acc.toggles += u64::from(t);
            acc.wire_cap += switched[c];
        }
        acc
    }

    /// Deterministic xorshift so the differential sweeps need no crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    fn random_cycles(
        rng: &mut Rng,
        n: usize,
        quiet_permille: u64,
    ) -> (Vec<u8>, Vec<u16>, Vec<f64>) {
        let mut toggles = Vec::with_capacity(n);
        let mut bins = Vec::with_capacity(n);
        let mut switched = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.next() % 1_000 < quiet_permille {
                toggles.push(0);
                bins.push(0);
                switched.push(0.0);
            } else {
                let t = (rng.next() % 32 + 1) as u8;
                toggles.push(t);
                bins.push((rng.next() % N_CEFF_BINS as u64) as u16);
                switched.push((rng.next() % 4_096) as f64 * 0.125);
            }
        }
        (toggles, bins, switched)
    }

    fn limits(rng: &mut Rng) -> ([f64; N_BUCKETS], [f64; N_BUCKETS]) {
        let mut pass = [0.0; N_BUCKETS];
        let mut shadow = [0.0; N_BUCKETS];
        for b in 0..N_BUCKETS {
            // Mix representable-on-the-grid limits (integer fF/mm, which
            // land exactly on bin boundaries) with fractional ones.
            pass[b] = (rng.next() % 600) as f64 - 30.0 + (rng.next() % 4) as f64 * 0.25;
            shadow[b] = pass[b] + (rng.next() % 64) as f64 * 0.5;
        }
        (pass, shadow)
    }

    #[test]
    fn thresholds_reproduce_the_float_comparison_exactly() {
        // Every (toggle count, bin) cell of the decision table, for
        // limits below, inside and above the bin range — including
        // limits exactly on a bin boundary, where `>` (not `>=`) must
        // be preserved.
        let mut rng = Rng(0x5eed);
        for _ in 0..50 {
            let (pass, shadow) = limits(&mut rng);
            let thr = LaneThresholds::from_limits(&pass, &shadow);
            for t in 0..=MAX_TOGGLES {
                for bin in 0..N_CEFF_BINS as u16 {
                    let load = f64::from(bin) * CEFF_BIN_WIDTH;
                    let bucket = bucket_of(t as u32);
                    let want_err = t > 0 && load > pass[bucket];
                    assert_eq!(bin >= thr.err_bin[t], want_err, "t={t} bin={bin}");
                    let want_shadow = want_err && load > shadow[bucket];
                    assert_eq!(
                        bin >= thr.err_bin[t] && bin >= thr.shadow_bin[t],
                        want_shadow,
                        "t={t} bin={bin}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_limits_requantize_exactly() {
        // A pass limit exactly equal to a reconstructed load must NOT
        // error at that bin (`>` in the scalar loop), and the sentinel
        // must engage when every bin is below the limit.
        let mut pass = [0.0; N_BUCKETS];
        let mut shadow = [0.0; N_BUCKETS];
        for b in 0..N_BUCKETS {
            pass[b] = 100.0; // exactly bin 100's load at width 1.0
            shadow[b] = f64::from(NEVER) * CEFF_BIN_WIDTH + 1.0; // above all bins
        }
        let thr = LaneThresholds::from_limits(&pass, &shadow);
        for t in 1..=MAX_TOGGLES {
            assert_eq!(thr.err_bin[t], 101);
            assert_eq!(thr.shadow_bin[t], NEVER);
        }
        assert_eq!(thr.err_bin[0], NEVER, "quiet cycles never error");
    }

    #[test]
    fn process_matches_scalar_reference_across_lengths_and_densities() {
        // Exact-lane, tail-only and mixed lengths; dense, sparse and
        // all-quiet traffic (the quiet-lane skip included).
        let mut rng = Rng(2005);
        for quiet_permille in [0, 300, 950, 1_000] {
            for n in [0, 1, 7, 8, 9, 16, 1_000, 4_097] {
                let (toggles, bins, switched) = random_cycles(&mut rng, n, quiet_permille);
                let (pass, shadow) = limits(&mut rng);
                let thr = LaneThresholds::from_limits(&pass, &shadow);
                let fast = process(&toggles, &bins, &switched, &thr);
                let slow = scalar_reference(&toggles, &bins, &switched, &pass, &shadow);
                assert_eq!(fast.errors, slow.errors, "n={n} quiet={quiet_permille}");
                assert_eq!(fast.shadow, slow.shadow, "n={n} quiet={quiet_permille}");
                assert_eq!(fast.toggles, slow.toggles, "n={n} quiet={quiet_permille}");
                assert_eq!(
                    fast.wire_cap.to_bits(),
                    slow.wire_cap.to_bits(),
                    "n={n} quiet={quiet_permille}"
                );
            }
        }
    }

    #[test]
    fn fused_kernel_matches_solo_process_per_member() {
        // One fused pass over K member threshold tables must reproduce
        // each member's solo `process` exactly: integer counts equal,
        // and the shared toggle/capacitance sums bit-equal to any solo
        // member's (they are member-independent) — across fan-ins,
        // lengths and traffic densities, tails and quiet lanes included.
        let mut rng = Rng(0x000f_05ed);
        for fan_in in [1usize, 3, 4, 16] {
            for quiet_permille in [0, 300, 950, 1_000] {
                for n in [0usize, 1, 7, 8, 9, 16, 1_000, 4_097] {
                    let (toggles, bins, switched) = random_cycles(&mut rng, n, quiet_permille);
                    let thrs: Vec<LaneThresholds> = (0..fan_in)
                        .map(|_| {
                            let (pass, shadow) = limits(&mut rng);
                            LaneThresholds::from_limits(&pass, &shadow)
                        })
                        .collect();
                    let mut counts = vec![FusedCounts::default(); fan_in];
                    let (toggle_sum, wire_cap) =
                        process_fused(&toggles, &bins, &switched, &thrs, &mut counts);
                    for (m, (thr, cnt)) in thrs.iter().zip(&counts).enumerate() {
                        let solo = process(&toggles, &bins, &switched, thr);
                        let ctx = format!("member {m}/{fan_in}, n={n} quiet={quiet_permille}");
                        assert_eq!(cnt.errors, solo.errors, "{ctx}");
                        assert_eq!(cnt.shadow, solo.shadow, "{ctx}");
                        assert_eq!(toggle_sum, solo.toggles, "{ctx}");
                        assert_eq!(wire_cap.to_bits(), solo.wire_cap.to_bits(), "{ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn swar_compare_handles_field_extremes() {
        // 0 vs 0, max bin vs sentinel, equal fields, and a mix — one
        // decision bit per field, no cross-field borrows.
        let a = pack4([0, 511, 100, 512]);
        let b = pack4([0, 512, 100, 512]);
        let ge = swar_ge4(a, b);
        assert_eq!(ge.count_ones(), 3); // fields 0, 2, 3 are >=
        assert_eq!(ge & 0x8000, 0x8000);
        assert_eq!(ge & 0x8000_0000, 0);
    }

    #[test]
    fn toggle_sum_folds_saturated_lanes() {
        // Eight maximal toggle counts: the SWAR sum must carry 256
        // without overflowing a field.
        let toggles = [MAX_TOGGLES as u8; LANE];
        let bins = [0u16; LANE];
        let switched = [0.0f64; LANE];
        let thr = LaneThresholds::from_limits(&[1e9; N_BUCKETS], &[1e9; N_BUCKETS]);
        let acc = process(&toggles, &bins, &switched, &thr);
        assert_eq!(acc.toggles, (MAX_TOGGLES * LANE) as u64);
        assert_eq!(acc.errors, 0);
    }
}
