//! The assembled DVS bus design.

use razorbus_ctrl::ControllerConfig;
use razorbus_ff::{FlopEnergyModel, ShadowSkewAnalysis};
use razorbus_process::{ProcessCorner, PvtCorner, TechnologyNode};
use razorbus_tables::{BusTables, EnvCondition};
use razorbus_units::{Femtofarads, Millivolts, Picoseconds, VoltageGrid};
use razorbus_wire::{BusPhysical, SizingError};

/// A complete DVS-capable bus design: physical bus, hold-analyzed shadow
/// skew, look-up tables and flop energy model.
///
/// Construction follows §2–§3 of the paper: size the repeaters for 600 ps
/// at the worst corner, derive the shadow-latch skew from the short-path
/// (hold) analysis capped at 33 % of the cycle, then tabulate
/// delay/energy across (corner, temperature, IR, VDD).
#[derive(Debug, Clone)]
pub struct DvsBusDesign {
    bus: BusPhysical,
    tables: BusTables,
    skew: ShadowSkewAnalysis,
    flop_energy: FlopEnergyModel,
}

impl DvsBusDesign {
    /// Assembles a design from a sized physical bus over a supply grid.
    #[must_use]
    pub fn from_bus(bus: BusPhysical, grid: VoltageGrid) -> Self {
        let skew = ShadowSkewAnalysis::paper_default(bus.min_path_delay());
        let tables = BusTables::build(&bus, grid, skew.chosen_skew());
        Self {
            bus,
            tables,
            skew,
            flop_energy: FlopEnergyModel::l130_default(),
        }
    }

    /// Like [`DvsBusDesign::from_bus`] but with an explicit cap on the
    /// shadow-skew fraction of the cycle (the paper uses 33 %); used by
    /// the skew ablation study.
    ///
    /// # Panics
    ///
    /// Panics if `skew_fraction_cap` is outside `(0, 0.5]`.
    #[must_use]
    pub fn with_skew_cap(bus: BusPhysical, grid: VoltageGrid, skew_fraction_cap: f64) -> Self {
        let skew = ShadowSkewAnalysis::new(
            bus.min_path_delay(),
            razorbus_units::Picoseconds::new(95.0),
            razorbus_units::Picoseconds::new(25.0),
            bus.clock().period(),
            skew_fraction_cap,
        );
        let tables = BusTables::build(&bus, grid, skew.chosen_skew());
        Self {
            bus,
            tables,
            skew,
            flop_energy: FlopEnergyModel::l130_default(),
        }
    }

    /// Assembles a design from a sized bus and **pre-built** tables —
    /// the table-cache path (`repro --load-tables`) that skips
    /// [`BusTables::build`].
    ///
    /// The tables carry no provenance beyond their numbers, so every
    /// stamp the design recomputes cheaply from the bus is checked
    /// against them: supply grid, bus width, setup budget, shadow skew
    /// (re-derived from the short-path analysis), worst-case load and
    /// repeater cap. Tables built for a different technology, coupling
    /// or corner calibration fail at least one of these and are refused
    /// — mirroring how `--load-summaries` refuses a stale cycle budget.
    ///
    /// # Errors
    ///
    /// Returns a description of the first stamp mismatch.
    pub fn from_bus_with_tables(
        bus: BusPhysical,
        grid: VoltageGrid,
        tables: BusTables,
    ) -> Result<Self, String> {
        let skew = ShadowSkewAnalysis::paper_default(bus.min_path_delay());
        if tables.grid() != grid {
            return Err(format!(
                "cached tables cover supply grid {:?}, this design wants {:?}",
                tables.grid(),
                grid
            ));
        }
        if tables.n_bits() != bus.layout().n_bits() {
            return Err(format!(
                "cached tables are for a {}-bit bus, this design has {} bits",
                tables.n_bits(),
                bus.layout().n_bits()
            ));
        }
        if tables.setup() != bus.max_path_delay() {
            return Err(format!(
                "cached tables use setup budget {}, this bus needs {} \
                 (different technology or sizing)",
                tables.setup(),
                bus.max_path_delay()
            ));
        }
        if tables.shadow_skew() != skew.chosen_skew() {
            return Err(format!(
                "cached tables use shadow skew {}, this bus derives {} \
                 (different short-path/coupling profile)",
                tables.shadow_skew(),
                skew.chosen_skew()
            ));
        }
        if tables.worst_ceff() != bus.worst_effective_cap_per_mm() {
            return Err(format!(
                "cached tables assume worst-case load {}, this bus has {}",
                tables.worst_ceff(),
                bus.worst_effective_cap_per_mm()
            ));
        }
        if tables.repeater_cap_per_toggle() != bus.line().repeater_cap_per_toggle() {
            return Err(format!(
                "cached tables assume repeater cap {}, this bus has {}",
                tables.repeater_cap_per_toggle(),
                bus.line().repeater_cap_per_toggle()
            ));
        }
        Ok(Self {
            bus,
            tables,
            skew,
            flop_energy: FlopEnergyModel::l130_default(),
        })
    }

    /// The paper's reference design (§3).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::from_bus(BusPhysical::paper_default(), VoltageGrid::paper_default())
    }

    /// The §6 modified bus: coupling ratio × 1.95 at constant worst-case
    /// delay, with the shadow skew re-derived from the (now faster)
    /// short path.
    #[must_use]
    pub fn modified_paper_bus() -> Self {
        let bus = BusPhysical::paper_default().with_boosted_coupling(1.95);
        Self::from_bus(bus, VoltageGrid::paper_default())
    }

    /// A design in technology `node` for the §6 scaling study (10 %
    /// sizing slack, supply grid spanning 440 mV below the node's
    /// nominal).
    ///
    /// # Errors
    ///
    /// Propagates [`SizingError`] when the node cannot drive the bus.
    pub fn for_technology(node: TechnologyNode) -> Result<Self, SizingError> {
        let (bus, _target) = BusPhysical::for_technology(node, 1.10)?;
        let nominal = Millivolts::from_volts(node.nominal_supply());
        let grid = VoltageGrid::new(nominal - Millivolts::new(440), nominal, Millivolts::new(20));
        Ok(Self::from_bus(bus, grid))
    }

    /// The physical bus.
    #[must_use]
    pub fn bus(&self) -> &BusPhysical {
        &self.bus
    }

    /// The look-up tables.
    #[must_use]
    pub fn tables(&self) -> &BusTables {
        &self.tables
    }

    /// The shadow-skew (hold) analysis.
    #[must_use]
    pub fn skew(&self) -> &ShadowSkewAnalysis {
        &self.skew
    }

    /// The flop energy model.
    #[must_use]
    pub fn flop_energy(&self) -> &FlopEnergyModel {
        &self.flop_energy
    }

    /// The supply grid.
    #[must_use]
    pub fn grid(&self) -> VoltageGrid {
        self.tables.grid()
    }

    /// Nominal supply on the grid (the grid ceiling).
    #[must_use]
    pub fn nominal(&self) -> Millivolts {
        self.grid().ceiling()
    }

    /// §5 regulator floor for a known process corner (worst-case
    /// temperature/IR assumed), clamped to the grid floor when the tables
    /// report headroom beyond the regulator range.
    #[must_use]
    pub fn regulator_floor(&self, process: ProcessCorner) -> Millivolts {
        self.tables
            .regulator_floor(process)
            .unwrap_or_else(|| self.nominal())
    }

    /// Fixed-VS baseline voltage (Table 1) for a known process corner.
    #[must_use]
    pub fn fixed_vs_voltage(&self, process: ProcessCorner) -> Millivolts {
        self.tables
            .fixed_vs_voltage(process)
            .unwrap_or_else(|| self.nominal())
    }

    /// The static-analysis floor of §4: the lowest grid voltage at which
    /// the worst pattern still meets the *shadow* setup at the actual
    /// corner `pvt` (with its own static IR and full-activity droop) —
    /// "the supply voltage is scaled only up to the point where the
    /// longest bus delay can still meet the setup time of the shadow
    /// latch for the specific PVT corner".
    #[must_use]
    pub fn static_shadow_floor(&self, pvt: PvtCorner) -> Millivolts {
        let matrix = self
            .tables
            .shadow_threshold_matrix(EnvCondition::from_pvt(pvt), pvt.ir);
        let need = self.tables.worst_ceff().ff() * (1.0 - 1e-9);
        let n = self.tables.n_bits() as u32;
        self.grid()
            .iter()
            .find(|&v| matrix.pass_limit(v, n) >= need)
            .unwrap_or_else(|| self.nominal())
    }

    /// Worst-pattern bus delay at nominal supply for a PVT corner (the
    /// x-axis of Figs. 5/10).
    #[must_use]
    pub fn delay_at_nominal(&self, pvt: PvtCorner) -> Picoseconds {
        let v_eff = self.nominal().to_volts() * (1.0 - pvt.ir.fraction());
        self.bus.delay(
            self.bus.worst_effective_cap_per_mm(),
            v_eff,
            pvt.process,
            pvt.temperature,
        )
    }

    /// The paper's §5 controller configuration for a known process
    /// corner.
    #[must_use]
    pub fn controller_config(&self, process: ProcessCorner) -> ControllerConfig {
        ControllerConfig::paper_default(self.regulator_floor(process))
    }

    /// Design worst-case effective capacitance (fF/mm).
    #[must_use]
    pub fn worst_ceff(&self) -> Femtofarads {
        self.tables.worst_ceff()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_assembles_consistently() {
        let d = DvsBusDesign::paper_default();
        d.tables().validate().unwrap();
        // Shadow skew: positive, no more than 33% of the cycle.
        let skew = d.skew().chosen_skew();
        assert!(skew.ps() > 50.0);
        assert!(skew.ps() <= 0.33 * 666.67 + 1e-6);
    }

    #[test]
    fn floors_and_baselines_are_ordered() {
        let d = DvsBusDesign::paper_default();
        for p in ProcessCorner::ALL {
            let floor = d.regulator_floor(p);
            let fixed = d.fixed_vs_voltage(p);
            assert!(floor <= fixed, "{p:?}: floor {floor} above fixed {fixed}");
        }
        assert_eq!(d.fixed_vs_voltage(ProcessCorner::Slow), d.nominal());
    }

    #[test]
    fn static_shadow_floor_below_main_floor_logic() {
        let d = DvsBusDesign::paper_default();
        // At the typical corner (no IR), the static floor must leave
        // scaling room below the fixed-VS point.
        let static_floor = d.static_shadow_floor(PvtCorner::TYPICAL);
        let fixed = d.fixed_vs_voltage(ProcessCorner::Typical);
        assert!(static_floor < fixed, "{static_floor} !< {fixed}");
    }

    #[test]
    fn delay_at_nominal_spans_fig5_axis() {
        let d = DvsBusDesign::paper_default();
        let delays: Vec<f64> = PvtCorner::FIG5
            .iter()
            .map(|&c| d.delay_at_nominal(c).ps())
            .collect();
        // Monotone decreasing from the design corner to the best corner.
        assert!(delays.windows(2).all(|w| w[1] < w[0]), "{delays:?}");
        assert!(delays[0] < 600.0 + 1.0);
        assert!(delays[4] > 250.0);
    }

    #[test]
    fn modified_bus_shrinks_skew_but_keeps_budget() {
        let base = DvsBusDesign::paper_default();
        let modified = DvsBusDesign::modified_paper_bus();
        // §6: the faster short path tightens the shadow skew.
        assert!(modified.skew().chosen_skew() <= base.skew().chosen_skew());
        assert!(
            (modified.bus().worst_case_delay_at_design_corner().ps()
                - base.bus().worst_case_delay_at_design_corner().ps())
            .abs()
                < 1.0
        );
    }

    #[test]
    fn design_from_cached_tables_matches_fresh_build() {
        let fresh = DvsBusDesign::paper_default();
        let cached = DvsBusDesign::from_bus_with_tables(
            BusPhysical::paper_default(),
            VoltageGrid::paper_default(),
            fresh.tables().clone(),
        )
        .unwrap();
        assert_eq!(cached.skew().chosen_skew(), fresh.skew().chosen_skew());
        assert_eq!(cached.nominal(), fresh.nominal());
        assert_eq!(
            cached.regulator_floor(ProcessCorner::Typical),
            fresh.regulator_floor(ProcessCorner::Typical)
        );
    }

    #[test]
    fn cached_tables_for_the_wrong_bus_are_refused() {
        let paper_tables = DvsBusDesign::paper_default().tables().clone();
        // The §6 modified bus has a different coupling profile (and with
        // it a different shadow skew and worst-case load).
        let err = DvsBusDesign::from_bus_with_tables(
            BusPhysical::paper_default().with_boosted_coupling(1.95),
            VoltageGrid::paper_default(),
            paper_tables.clone(),
        )
        .unwrap_err();
        assert!(
            err.contains("shadow skew") || err.contains("worst-case load"),
            "{err}"
        );
        // A different supply grid is refused before anything else.
        let err = DvsBusDesign::from_bus_with_tables(
            BusPhysical::paper_default(),
            VoltageGrid::new(
                Millivolts::new(800),
                Millivolts::new(1_200),
                Millivolts::new(20),
            ),
            paper_tables,
        )
        .unwrap_err();
        assert!(err.contains("supply grid"), "{err}");
    }

    #[test]
    fn technology_designs_build() {
        for node in TechnologyNode::ALL {
            let d = DvsBusDesign::for_technology(node).unwrap();
            d.tables().validate().unwrap();
        }
    }
}
