//! Developer probe: prints the calibration quantities DESIGN.md §4
//! anchors against (per-benchmark error onset, closed-loop equilibrium,
//! floors and fixed-VS baselines).

use razorbus_core::{BusSimulator, DvsBusDesign, TraceSummary};
use razorbus_ctrl::ThresholdController;
use razorbus_process::{ProcessCorner, PvtCorner};
use razorbus_traces::Benchmark;

fn main() {
    let cycles: u64 = std::env::var("RAZORBUS_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let design = DvsBusDesign::paper_default();

    println!("shadow skew: {:.1}", design.skew().chosen_skew());
    for p in ProcessCorner::ALL {
        println!(
            "{p:?}: regulator floor {}, fixed VS {}",
            design.regulator_floor(p),
            design.fixed_vs_voltage(p)
        );
    }

    for corner in [PvtCorner::WORST, PvtCorner::TYPICAL] {
        println!("\n=== {corner} (cycles/bench: {cycles}) ===");
        println!(
            "{:<9} {:>7} {:>8} {:>8} {:>7} | {:>8} {:>7} {:>7} {:>8}",
            "bench",
            "P(err)@",
            "V(2%)",
            "V(5%)",
            "tgl/cyc",
            "DVS gain",
            "DVS err",
            "minV",
            "fixedVS"
        );
        let fixed_v = design.fixed_vs_voltage(corner.process);
        for b in Benchmark::ALL {
            let mut trace = b.trace(7);
            let s = TraceSummary::collect(&design, &mut trace, cycles);
            // error rate one step below the zero-error onset
            let v0 = s.lowest_voltage_for_error_rate(&design, corner, 0.0);
            let below = design.grid().snap_up(v0 - design.grid().step());
            let p_below = s.error_rate(&design, corner, below);
            let v2 = s.lowest_voltage_for_error_rate(&design, corner, 0.02);
            let v5 = s.lowest_voltage_for_error_rate(&design, corner, 0.05);

            let ctrl = ThresholdController::new(design.controller_config(corner.process));
            let mut sim = BusSimulator::new(&design, corner, b.trace(7), ctrl);
            let r = sim.run(cycles);
            let fixed_gain = {
                let base = s.energy(&design, corner, design.nominal(), false);
                1.0 - s.energy(&design, corner, fixed_v, false) / base
            };
            println!(
                "{:<9} {:>6.2}% {:>8} {:>8} {:>7.1} | {:>7.1}% {:>6.2}% {:>7} {:>7.1}%",
                b.name(),
                p_below * 100.0,
                v2.mv(),
                v5.mv(),
                s.mean_toggles(),
                r.energy_gain() * 100.0,
                r.error_rate() * 100.0,
                r.min_voltage.mv(),
                fixed_gain * 100.0,
            );
            assert_eq!(r.shadow_violations, 0, "{b} shadow violation!");
        }
    }
}
