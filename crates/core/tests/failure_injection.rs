//! Failure-injection tests: drive the system outside its guaranteed
//! envelope and verify failures are *detected and accounted*, never
//! silent — plus contract checks on misuse.

use razorbus_core::{BusSimulator, DvsBusDesign, TraceSummary};
use razorbus_ctrl::{ControllerConfig, FixedVoltage, ThresholdController};
use razorbus_process::{ProcessCorner, PvtCorner};
use razorbus_traces::Benchmark;
use razorbus_units::Millivolts;

#[test]
fn below_floor_operation_reports_shadow_violations() {
    // Pin the supply at the grid floor (760 mV) at the worst corner —
    // far below the regulator floor. The simulator must *count* shadow
    // violations rather than silently mis-simulate.
    let design = DvsBusDesign::paper_default();
    let mut sim = BusSimulator::new(
        &design,
        PvtCorner::WORST,
        Benchmark::Mgrid.trace(1),
        FixedVoltage::new(design.grid().floor()),
    );
    let r = sim.run(20_000);
    assert!(r.errors > 0, "deep under-volting must error");
    assert!(
        r.shadow_violations > 0,
        "below the floor the shadow latch must be reported as unsafe"
    );
}

#[test]
fn at_regulator_floor_no_shadow_violations() {
    // The §5 guarantee at the boundary itself.
    let design = DvsBusDesign::paper_default();
    for process in ProcessCorner::ALL {
        let corner = PvtCorner::new(
            process,
            razorbus_units::Celsius::HOT,
            razorbus_process::IrDrop::TenPercent,
        );
        let floor = design.regulator_floor(process);
        let mut sim = BusSimulator::new(
            &design,
            corner,
            Benchmark::Swim.trace(3),
            FixedVoltage::new(floor),
        );
        let r = sim.run(20_000);
        assert_eq!(r.shadow_violations, 0, "{process:?} floor {floor} unsafe");
    }
}

#[test]
#[should_panic(expected = "off grid")]
fn off_grid_governor_voltage_panics() {
    let design = DvsBusDesign::paper_default();
    let mut sim = BusSimulator::new(
        &design,
        PvtCorner::TYPICAL,
        Benchmark::Crafty.trace(1),
        FixedVoltage::new(Millivolts::new(1_111)),
    );
    let _ = sim.run(10);
}

#[test]
#[should_panic(expected = "floor above ceiling")]
fn inconsistent_controller_config_rejected() {
    let mut cfg = ControllerConfig::paper_default(Millivolts::new(900));
    cfg.floor = Millivolts::new(1_300);
    cfg.ceiling = Millivolts::new(1_200);
    let _ = ThresholdController::new(cfg);
}

#[test]
#[should_panic(expected = "at least one cycle")]
fn empty_summary_rejected() {
    let design = DvsBusDesign::paper_default();
    let mut trace = Benchmark::Crafty.trace(1);
    let _ = TraceSummary::collect(&design, &mut trace, 0);
}

#[test]
fn controller_saturates_instead_of_failing_under_pathological_trace() {
    // An adversarial trace that toggles every wire opposite to its
    // neighbors every cycle (alternating 0xAAAA.../0x5555...): the worst
    // pattern on every cycle. The controller must retreat to nominal and
    // stay there, errors bounded by the band logic, shadow latch safe.
    struct Adversary(bool);
    impl razorbus_traces::TraceSource for Adversary {
        fn next_word(&mut self) -> u32 {
            self.0 = !self.0;
            if self.0 {
                0xAAAA_AAAA
            } else {
                0x5555_5555
            }
        }
    }
    let design = DvsBusDesign::paper_default();
    let corner = PvtCorner::WORST;
    let ctrl = ThresholdController::new(design.controller_config(corner.process));
    let mut sim = BusSimulator::new(&design, corner, Adversary(false), ctrl);
    let r = sim.run(200_000);
    assert_eq!(r.shadow_violations, 0, "adversary broke the shadow latch");
    // The controller ends oscillating between nominal and one probe step
    // below it (error-free at 1.2 V -> probe down; saturated errors one
    // step down -> climb back).
    let ctrl = sim.governor();
    assert!(
        razorbus_ctrl::VoltageGovernor::voltage(ctrl) >= design.nominal() - design.grid().step(),
        "controller sank under an always-worst-pattern trace"
    );
    assert!(r.min_voltage >= design.nominal() - design.grid().step() * 2);
    // Probing below nominal repeatedly costs bounded errors: the band
    // logic re-probes one window out of every few.
    assert!(
        r.error_rate() < 0.40,
        "adversarial error rate {}",
        r.error_rate()
    );
}

#[test]
fn quiet_trace_rides_the_floor_forever() {
    // The opposite pathology: a never-toggling bus. The controller walks
    // to the floor and sits there error-free (no spurious errors on
    // steady wires at any legal voltage).
    struct Silent;
    impl razorbus_traces::TraceSource for Silent {
        fn next_word(&mut self) -> u32 {
            0xDEAD_BEEF
        }
    }
    let design = DvsBusDesign::paper_default();
    let corner = PvtCorner::TYPICAL;
    let ctrl = ThresholdController::new(design.controller_config(corner.process));
    let mut sim = BusSimulator::new(&design, corner, Silent, ctrl);
    let r = sim.run(400_000);
    assert_eq!(r.errors, 0);
    assert_eq!(r.min_voltage, design.regulator_floor(corner.process));
    // A quiet bus still burns clocking + leakage, so the gain is capped
    // below the pure quadratic ratio.
    assert!(r.energy_gain() > 0.0);
}

#[test]
fn single_cycle_run_is_well_formed() {
    let design = DvsBusDesign::paper_default();
    let mut sim = BusSimulator::new(
        &design,
        PvtCorner::TYPICAL,
        Benchmark::Gap.trace(9),
        FixedVoltage::new(design.nominal()),
    );
    let r = sim.run(1);
    assert_eq!(r.cycles, 1);
    assert!(r.energy.fj() > 0.0);
    assert!((r.energy_gain()).abs() < 1e-9);
}
