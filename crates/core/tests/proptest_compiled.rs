//! Property tests for the parallel compile pipeline: any chunking of
//! any trace assembles bit-identically to the serial
//! `CompiledTrace::compile`, with the chunk-boundary `prev`-word seams
//! (cycle `k*chunk` reading the last word of the previous chunk)
//! exercised at randomized cycle counts and chunk sizes.

use proptest::prelude::*;
use razorbus_core::{CompiledTrace, DvsBusDesign, SerialChunks};
use razorbus_traces::{RandomWords, TraceRecording, TraceSource};

use std::sync::OnceLock;

fn designs() -> &'static Vec<(&'static str, DvsBusDesign)> {
    static DESIGNS: OnceLock<Vec<(&'static str, DvsBusDesign)>> = OnceLock::new();
    DESIGNS.get_or_init(|| {
        vec![
            ("paper", DvsBusDesign::paper_default()),
            ("modified", DvsBusDesign::modified_paper_bus()),
        ]
    })
}

/// A recorded word stream replayable any number of times: the chunked
/// and serial compiles must consume identical words.
fn record(seed: u64, cycles: u64) -> TraceRecording {
    TraceRecording::capture(
        &mut RandomWords::new(seed),
        usize::try_from(cycles).unwrap() + 1,
    )
}

proptest! {
    /// Chunked ≡ serial at arbitrary (cycles, chunk) combinations —
    /// including chunk = 1 (every cycle a seam), chunks that divide the
    /// count, chunks that leave a short tail, and chunks beyond the
    /// whole trace. `PartialEq` covers every array element and stamp,
    /// so any seam that mis-primes its `prev` word fails here.
    #[test]
    fn chunk_seams_never_show(seed in any::<u64>(), cycles in 1u64..400, chunk in 1usize..512) {
        let recording = record(seed, cycles);
        for (name, design) in designs() {
            let serial = CompiledTrace::compile(design, &mut recording.replay(), cycles);
            let chunked = CompiledTrace::compile_chunked(
                design,
                &mut recording.replay(),
                cycles,
                chunk,
                &SerialChunks,
            );
            prop_assert_eq!(&serial, &chunked, "{}: cycles {}, chunk {}", name, cycles, chunk);
        }
    }

    /// The drained word buffer is exactly the serial path's word
    /// protocol: `cycles + 1` words in stream order, the first priming
    /// `prev`.
    #[test]
    fn drained_words_match_the_stream(seed in any::<u64>(), cycles in 1u64..400) {
        let recording = record(seed, cycles);
        let words = CompiledTrace::drain_words(&mut recording.replay(), cycles);
        prop_assert_eq!(words.len() as u64, cycles + 1);
        let mut replay = recording.replay();
        for (c, &w) in words.iter().enumerate() {
            prop_assert_eq!(w, replay.next_word(), "word {}", c);
        }
    }
}
