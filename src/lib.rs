//! # razorbus
//!
//! A full reproduction of **Kaul, Sylvester, Blaauw, Mudge, Austin —
//! "DVS for On-Chip Bus Designs Based on Timing Error Correction"
//! (DATE 2005)**: dynamic voltage scaling for on-chip buses built on
//! Razor-style double-sampling flip-flops that detect and correct timing
//! errors *without retransmitting on the bus*.
//!
//! The workspace models the complete system described in the paper:
//!
//! * a 6 mm, 32-bit, 1.5 GHz memory read bus in a 0.13 µm process, with
//!   shields every four signals and repeaters sized for 600 ps at the
//!   worst PVT corner ([`wire`]),
//! * an alpha-power-law device/corner/leakage model and vector-dependent
//!   supply droop ([`process`]),
//! * SPICE-style per-pattern delay/energy look-up tables ([`tables`]),
//! * the double-sampling flip-flop, its bank, recovery FSM and hold-time
//!   analysis ([`ff`]),
//! * statistically shaped SPEC2000 memory-read traces ([`traces`]),
//! * the §5 threshold controller with a 1 µs/10 mV regulator ([`ctrl`]),
//! * the cycle-level simulator and one driver per paper figure/table
//!   ([`core`]),
//! * a declarative scenario layer that runs experiments, repro
//!   pipelines and ablations from data ([`scenario`]).
//!
//! # Quickstart
//!
//! ```
//! use razorbus::core::{BusSimulator, DvsBusDesign};
//! use razorbus::ctrl::ThresholdController;
//! use razorbus::process::PvtCorner;
//! use razorbus::traces::Benchmark;
//!
//! // Build the paper's bus and run crafty under the DVS controller at
//! // the typical corner.
//! let design = DvsBusDesign::paper_default();
//! let controller =
//!     ThresholdController::new(design.controller_config(PvtCorner::TYPICAL.process));
//! let mut sim = BusSimulator::new(&design, PvtCorner::TYPICAL,
//!                                 Benchmark::Crafty.trace(42), controller);
//! let report = sim.run(200_000);
//! assert!(report.energy_gain() > 0.15);
//! assert!(report.error_rate() < 0.02);
//! assert_eq!(report.shadow_violations, 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Typed physical quantities (ps, mV, fF, Ω, fJ, °C, GHz).
pub mod units {
    pub use razorbus_units::*;
}

/// Process corners, alpha-power devices, leakage, IR drop and
/// technology nodes.
pub mod process {
    pub use razorbus_process::*;
}

/// Interconnect: geometry, capacitance extraction, layout, coupling,
/// repeatered lines and repeater sizing.
pub mod wire {
    pub use razorbus_wire::*;
}

/// SPICE-style delay/energy look-up tables.
pub mod tables {
    pub use razorbus_tables::*;
}

/// Double-sampling (Razor) flip-flops, banks, recovery and hold analysis.
pub mod ff {
    pub use razorbus_ff::*;
}

/// Synthetic SPEC2000-like memory-read-bus traces.
pub mod traces {
    pub use razorbus_traces::*;
}

/// DVS governors: threshold/proportional controllers, regulator model,
/// fixed-VS baseline.
pub mod ctrl {
    pub use razorbus_ctrl::*;
}

/// The assembled design, cycle-level simulator and paper experiments.
pub mod core {
    pub use razorbus_core::*;
}

/// Persistent artifacts: versioned, checksummed binary/JSON storage for
/// recordings, summary banks and tables.
///
/// ```
/// use razorbus::artifact::{decode, encode, Artifact, Encoding};
/// use razorbus::traces::{Benchmark, TraceRecording};
///
/// let recording = TraceRecording::capture(&mut Benchmark::Gap.trace(1), 128);
/// let bytes = encode(TraceRecording::KIND, Encoding::Json, &recording).unwrap();
/// let reloaded: TraceRecording = decode(TraceRecording::KIND, &bytes).unwrap();
/// assert_eq!(reloaded, recording);
/// ```
pub mod artifact {
    pub use razorbus_artifact::*;
}

/// Declarative scenarios: spec-driven, deduplicated, parallel execution
/// of experiments, repro runs and ablations.
///
/// ```
/// use razorbus::scenario::catalog;
///
/// let run = catalog::by_name("crosstalk-storm", 2_000, 1)
///     .expect("catalog name")
///     .run()
///     .expect("valid spec");
/// // Even under adversarial worst-pattern traffic, no silent corruption.
/// let member = &run.result.members[0];
/// assert_eq!(member.closed_loop.as_ref().unwrap().shadow_violations(), 0);
/// ```
pub mod scenario {
    pub use razorbus_scenario::*;
}

pub use razorbus_artifact::{Artifact, ArtifactError};
pub use razorbus_core::{BusSimulator, CompiledTrace, DvsBusDesign, SimReport, TraceSummary};
pub use razorbus_ctrl::{ThresholdController, VoltageGovernor};
pub use razorbus_process::PvtCorner;
pub use razorbus_traces::Benchmark;
