//! Smoke test for the `razorbus` facade: every re-exported module path and
//! root-level type must resolve, and the facade must be usable end-to-end
//! the same way the crate-level Quickstart doctest uses it (the doctest
//! itself runs under `cargo test --doc`).

use razorbus::core::{BusSimulator, DvsBusDesign};
use razorbus::ctrl::ThresholdController;
use razorbus::process::PvtCorner;
use razorbus::traces::Benchmark;

/// Each facade module resolves and exposes a representative type.
#[test]
fn module_reexports_resolve() {
    let _: razorbus::units::Picoseconds = razorbus::units::Picoseconds::new(600.0);
    let _: razorbus::process::PvtCorner = razorbus::process::PvtCorner::TYPICAL;
    let _: razorbus::wire::BusPhysical = razorbus::wire::BusPhysical::paper_default();
    let _: razorbus::tables::EnvCondition =
        razorbus::tables::EnvCondition::from_pvt(razorbus::process::PvtCorner::TYPICAL);
    let _: razorbus::ff::DoubleSamplingFlop = razorbus::ff::DoubleSamplingFlop::new(
        razorbus::units::Picoseconds::new(50.0),
        razorbus::units::Picoseconds::new(160.0),
    );
    let _: razorbus::traces::Benchmark = razorbus::traces::Benchmark::Crafty;
    let design = DvsBusDesign::paper_default();
    let _: razorbus::ctrl::ThresholdController =
        ThresholdController::new(design.controller_config(PvtCorner::TYPICAL.process));
    let _: razorbus::core::DvsBusDesign = design;
}

/// The root-level shortcut re-exports name the same types as the modules.
#[test]
fn root_reexports_are_the_module_types() {
    fn same_type<T>(_: &T, _: &T) {}

    let a: razorbus::PvtCorner = razorbus::PvtCorner::TYPICAL;
    let b: razorbus::process::PvtCorner = razorbus::process::PvtCorner::TYPICAL;
    same_type(&a, &b);

    let c: razorbus::Benchmark = razorbus::Benchmark::Crafty;
    let d: razorbus::traces::Benchmark = razorbus::traces::Benchmark::Crafty;
    same_type(&c, &d);
}

/// The Quickstart flow works through the facade: short closed-loop run,
/// zero silent corruptions.
#[test]
fn quickstart_flow_runs_through_facade() {
    let design = DvsBusDesign::paper_default();
    let controller = ThresholdController::new(design.controller_config(PvtCorner::TYPICAL.process));
    let mut sim = BusSimulator::new(
        &design,
        PvtCorner::TYPICAL,
        Benchmark::Crafty.trace(42),
        controller,
    );
    let report: razorbus::SimReport = sim.run(50_000);
    assert_eq!(report.cycles, 50_000);
    assert_eq!(report.shadow_violations, 0);
    assert!(report.error_rate() < 0.10);
}
