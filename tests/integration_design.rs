//! Cross-crate integration tests of the *design* pipeline: geometry →
//! extraction → sizing → hold analysis → tables, against the paper's §2–§3
//! anchor numbers.

use razorbus::core::DvsBusDesign;
use razorbus::process::{ProcessCorner, PvtCorner};
use razorbus::units::Millivolts;

#[test]
fn paper_design_hits_600ps_at_worst_corner() {
    let design = DvsBusDesign::paper_default();
    let worst = design.bus().worst_case_delay_at_design_corner();
    assert!(
        (worst.ps() - 600.0).abs() < 1.0,
        "design target missed: {worst}"
    );
    // 10% cycle slack at 1.5 GHz.
    let period = design.bus().clock().period();
    assert!((period.ps() * 0.9 - 600.0).abs() < 1.0);
}

#[test]
fn shadow_skew_close_to_paper_third_of_cycle() {
    // §2: "the shadow latch clock could be delayed by as much as 33% of
    // the clock cycle without violating the short-path constraint."
    let design = DvsBusDesign::paper_default();
    let frac = design.skew().skew_fraction();
    assert!(
        (0.20..=0.33).contains(&frac),
        "skew fraction {frac} outside the paper's regime"
    );
}

#[test]
fn corner_delay_spread_matches_fig5_axis() {
    // Fig. 5's x-axis runs from ~600 ps (design corner) down to ~400 ps
    // across the five corners; we accept a somewhat wider band.
    let design = DvsBusDesign::paper_default();
    let delays: Vec<f64> = PvtCorner::FIG5
        .iter()
        .map(|&c| design.delay_at_nominal(c).ps())
        .collect();
    // The x-axis delay excludes the dynamic (activity) droop that the
    // 600 ps sizing reserves margin for, so it sits slightly below 600.
    assert!(
        (560.0..=605.0).contains(&delays[0]),
        "design corner {}",
        delays[0]
    );
    assert!(
        (300.0..=500.0).contains(&delays[4]),
        "best corner {}",
        delays[4]
    );
    assert!(delays.windows(2).all(|w| w[1] < w[0]), "{delays:?}");
}

#[test]
fn zero_error_voltage_at_typical_near_980mv() {
    // Fig. 4b: "no errors are introduced up to a 980mV supply" at
    // (typical, 100C, no IR). Our calibration band: 920-1000 mV.
    let design = DvsBusDesign::paper_default();
    let bus = design.bus();
    let mut zero_error = design.nominal();
    for v in design.grid().iter().rev() {
        let v_eff = v.to_volts();
        let d = bus.delay(
            bus.worst_effective_cap_per_mm(),
            v_eff,
            ProcessCorner::Typical,
            razorbus::units::Celsius::HOT,
        );
        if d <= design.tables().setup() {
            zero_error = v;
        } else {
            break;
        }
    }
    assert!(
        (Millivolts::new(920)..=Millivolts::new(1_000)).contains(&zero_error),
        "typical zero-error voltage {zero_error}"
    );
}

#[test]
fn fixed_vs_baseline_matches_table1_structure() {
    let design = DvsBusDesign::paper_default();
    // Slow corner: no headroom at all (0.0% rows of Table 1).
    assert_eq!(
        design.fixed_vs_voltage(ProcessCorner::Slow),
        design.nominal()
    );
    // Typical corner: the paper's 17% gain corresponds to 1.10 V;
    // accept one grid step either way.
    let typ = design.fixed_vs_voltage(ProcessCorner::Typical);
    assert!(
        (Millivolts::new(1_060)..=Millivolts::new(1_140)).contains(&typ),
        "typical fixed-VS supply {typ}"
    );
}

#[test]
fn regulator_floor_is_process_tuned_and_conservative() {
    // §5: floor tuned per process corner assuming worst temperature/IR.
    let design = DvsBusDesign::paper_default();
    let slow = design.regulator_floor(ProcessCorner::Slow);
    let typ = design.regulator_floor(ProcessCorner::Typical);
    let fast = design.regulator_floor(ProcessCorner::Fast);
    assert!(slow > typ && typ > fast, "{slow} {typ} {fast}");
    // The floor always leaves the shadow latch safe: static analysis at
    // the tuning corner shows zero shadow violations at the floor.
    for p in ProcessCorner::ALL {
        let floor = design.regulator_floor(p);
        let tuning = PvtCorner::new(
            p,
            razorbus::units::Celsius::HOT,
            razorbus::process::IrDrop::TenPercent,
        );
        let matrix = design
            .tables()
            .shadow_threshold_matrix(razorbus::tables::EnvCondition::from_pvt(tuning), tuning.ir);
        assert!(
            matrix.pass_limit(floor, 32) >= design.worst_ceff().ff() * (1.0 - 1e-9),
            "{p:?}: worst pattern would corrupt the shadow latch at {floor}"
        );
    }
}

#[test]
fn modified_bus_preserves_worst_case_and_shrinks_best_case() {
    let base = DvsBusDesign::paper_default();
    let modified = DvsBusDesign::modified_paper_bus();
    let ratio =
        modified.bus().parasitics().coupling_ratio() / base.bus().parasitics().coupling_ratio();
    assert!((ratio - 1.95).abs() < 1e-9, "coupling boost {ratio}");
    assert!((modified.bus().worst_case_delay_at_design_corner().ps() - 600.0).abs() < 1.0);
    assert!(modified.bus().min_path_delay() < base.bus().min_path_delay());
    // Routing area unchanged: same track count.
    assert_eq!(
        modified.bus().layout().n_tracks(),
        base.bus().layout().n_tracks()
    );
}

#[test]
fn tables_validate_for_both_buses() {
    DvsBusDesign::paper_default().tables().validate().unwrap();
    DvsBusDesign::modified_paper_bus()
        .tables()
        .validate()
        .unwrap();
}
