//! Cross-crate integration tests of the closed-loop DVS system against
//! the paper's §4–§5 result bands. Cycle counts are kept moderate so the
//! suite stays fast; the bands account for the controller's descent
//! transient from 1.2 V (the full-length `repro` runs land closer still).

use razorbus::core::{experiments, BusSimulator, DvsBusDesign};
use razorbus::ctrl::{FixedVoltage, ThresholdController};
use razorbus::process::PvtCorner;
use razorbus::traces::Benchmark;
use razorbus::units::Millivolts;

const CYCLES: u64 = 400_000;

#[test]
fn worst_corner_dvs_band() {
    // Paper Table 1 (slow, 100C, 10% IR): per-benchmark DVS gains 1.2%
    // to 17.5%, combined error < 2.3%, light programs far above heavy.
    let design = DvsBusDesign::paper_default();
    let data = experiments::fig8::run(&design, PvtCorner::WORST, CYCLES, 5);
    let gain = |b: Benchmark| {
        data.segments
            .iter()
            .find(|s| s.benchmark == b)
            .unwrap()
            .report
            .energy_gain()
    };
    for light in [Benchmark::Crafty, Benchmark::Mesa] {
        assert!(
            (0.06..0.30).contains(&gain(light)),
            "{light}: {}",
            gain(light)
        );
    }
    for heavy in [Benchmark::Mgrid, Benchmark::Swim, Benchmark::Wupwise] {
        assert!(
            gain(heavy) < 0.08,
            "{heavy} should barely gain at the worst corner: {}",
            gain(heavy)
        );
    }
    assert!(gain(Benchmark::Crafty) > 2.0 * gain(Benchmark::Mgrid));
    let total = data.total_energy_gain();
    assert!((0.02..0.20).contains(&total), "total {total}");
    assert!(data.total_error_rate() < 0.025);
}

#[test]
fn typical_corner_dvs_band() {
    // Paper Table 1 (typical, 100C, no IR): gains 34.6-45.2%, total
    // 38.6%, error ~1.4%. With the descent transient at 400k cycles we
    // accept 25-50%.
    let design = DvsBusDesign::paper_default();
    let data = experiments::fig8::run(&design, PvtCorner::TYPICAL, CYCLES, 5);
    for seg in &data.segments {
        let g = seg.report.energy_gain();
        assert!(
            (0.22..0.50).contains(&g),
            "{}: gain {g}",
            seg.benchmark.name()
        );
        assert!(seg.report.shadow_violations == 0);
    }
    let total = data.total_energy_gain();
    assert!((0.25..0.50).contains(&total), "total {total}");
    assert!(
        data.total_error_rate() < 0.02,
        "{}",
        data.total_error_rate()
    );
    // DVS dominates the fixed-VS baseline by a wide margin (paper:
    // 38.6% vs 17%).
    assert!(total > 0.22);
}

#[test]
fn instantaneous_error_spikes_from_regulator_lag() {
    // Fig. 8: instantaneous error rates overshoot the 2% band (up to
    // ~6%) because the regulator takes 3000 cycles to ramp.
    let design = DvsBusDesign::paper_default();
    let data = experiments::fig8::run(&design, PvtCorner::TYPICAL, CYCLES, 5);
    let peak = data.peak_window_error_rate();
    assert!(peak > 0.02, "no overshoot observed: peak {peak}");
    assert!(peak < 0.25, "implausible overshoot: peak {peak}");
}

#[test]
fn oracle_fig6_separates_programs() {
    let design = DvsBusDesign::paper_default();
    let data = experiments::fig6::run(&design, 30, 10_000, 5);
    let mean = |b: Benchmark, t: f64| {
        data.entries
            .iter()
            .find(|e| e.benchmark == b && e.target == t)
            .unwrap()
            .mean_voltage_mv()
    };
    // Paper Fig. 6 at 2%: crafty ~900, vortex intermediate, mgrid ~980.
    assert!(mean(Benchmark::Crafty, 0.02) < mean(Benchmark::Vortex, 0.02));
    assert!(mean(Benchmark::Vortex, 0.02) < mean(Benchmark::Mgrid, 0.02) + 1.0);
    assert!(mean(Benchmark::Crafty, 0.02) + 40.0 < mean(Benchmark::Mgrid, 0.02));
    // mgrid cannot use a looser target (the paper: "the supply cannot be
    // reduced below 980mV even with a target error rate of 5%") — allow
    // it one grid step.
    assert!(mean(Benchmark::Mgrid, 0.02) - mean(Benchmark::Mgrid, 0.05) <= 20.0);
}

#[test]
fn fixed_voltage_at_fixed_vs_point_is_error_free() {
    // The Table 1 baseline: zero errors guaranteed at the fixed-VS
    // supply at its own corner, for every benchmark.
    let design = DvsBusDesign::paper_default();
    let corner = PvtCorner::TYPICAL;
    let v = design.fixed_vs_voltage(corner.process);
    for b in [Benchmark::Crafty, Benchmark::Mgrid, Benchmark::Vortex] {
        let mut sim = BusSimulator::new(&design, corner, b.trace(3), FixedVoltage::new(v));
        let r = sim.run(100_000);
        assert_eq!(r.errors, 0, "{b} errored at the fixed-VS supply");
    }
}

#[test]
fn controller_recovers_after_hot_phase() {
    // Drive vortex long enough to cross several phases: the controller
    // must climb during hot phases and come back down after, without
    // ever breaching the floor/ceiling.
    let design = DvsBusDesign::paper_default();
    let corner = PvtCorner::TYPICAL;
    let floor = design.regulator_floor(corner.process);
    let ctrl = ThresholdController::new(design.controller_config(corner.process));
    let mut sim =
        BusSimulator::new(&design, corner, Benchmark::Vortex.trace(9), ctrl).with_sampling(10_000);
    let r = sim.run(2_000_000);
    let voltages: Vec<i32> = r.samples.iter().map(|s| s.voltage.mv()).collect();
    assert!(voltages.iter().all(|&v| v >= floor.mv() && v <= 1_200));
    // It moved both ways.
    let ctrl = sim.governor();
    assert!(ctrl.steps_down() > 10);
    assert!(ctrl.steps_up() > 0, "never had to back off");
}

#[test]
fn modified_bus_beats_original_at_worst_corner() {
    // §6: worst-corner DVS average gain 6.3% -> 8.2% for the modified
    // bus; we assert the direction with margin for trace scale.
    let base = DvsBusDesign::paper_default();
    let modified = DvsBusDesign::modified_paper_bus();
    let d_base = experiments::fig8::run(&base, PvtCorner::WORST, 200_000, 5);
    let d_mod = experiments::fig8::run(&modified, PvtCorner::WORST, 200_000, 5);
    assert!(
        d_mod.total_energy_gain() > d_base.total_energy_gain() - 0.005,
        "modified {} vs base {}",
        d_mod.total_energy_gain(),
        d_base.total_energy_gain()
    );
    assert!(d_mod.total_error_rate() < 0.03);
}

#[test]
fn fig4_combined_curves_have_paper_shape() {
    let design = DvsBusDesign::paper_default();
    for (corner, early_fail) in [(PvtCorner::WORST, true), (PvtCorner::TYPICAL, false)] {
        let data = experiments::fig4::run(&design, corner, 50_000, 7);
        let first_fail = data.first_failure_voltage().unwrap();
        if early_fail {
            assert!(
                first_fail >= Millivolts::new(1_160),
                "{corner}: {first_fail}"
            );
        } else {
            assert!(
                first_fail <= Millivolts::new(1_000),
                "{corner}: {first_fail}"
            );
        }
        // Normalized energy reaches well below 0.8 at the sweep floor.
        assert!(data.points[0].bus_energy_norm < 0.8, "{corner}");
    }
}
