//! Cross-validation between the two independent error models:
//!
//! 1. the *event-level* path — per-wire arrival times from the RC model
//!    fed into the bit-level [`razorbus::ff::FlopBank`], and
//! 2. the *table* path — the quantized pass-limit comparison used by the
//!    high-throughput simulator.
//!
//! Both must agree on which cycles error (up to the 1 fF/mm histogram
//! quantization at the threshold) and recovery must always restore the
//! transmitted word.

use razorbus::core::DvsBusDesign;
use razorbus::ff::FlopBank;
use razorbus::process::PvtCorner;
use razorbus::tables::EnvCondition;
use razorbus::traces::{Benchmark, TraceSource};
use razorbus::units::{Millivolts, Picoseconds};

fn run_cross_check(corner: PvtCorner, v: Millivolts, benchmark: Benchmark, cycles: u64) {
    let design = DvsBusDesign::paper_default();
    let bus = design.bus();
    let tables = design.tables();
    let matrix = tables.threshold_matrix(EnvCondition::from_pvt(corner), corner.ir);
    let vi = design.grid().index_of(v).unwrap();

    let mut bank = FlopBank::new(32, tables.setup(), design.skew().chosen_skew());
    let mut trace = benchmark.trace(17);
    let mut prev = trace.next_word();

    let mut event_errors = 0u64;
    let mut table_errors = 0u64;
    let mut disagreements = 0u64;

    for _ in 0..cycles {
        let cur = trace.next_word();
        let analysis = bus.analyze_cycle(prev, cur);
        let bucket = (analysis.toggled_wires / 4).min(8) as usize;
        let limit = matrix.pass_limit_at(vi, bucket);
        let table_says_error = analysis.toggled_wires > 0 && analysis.worst_ceff_per_mm > limit;

        // Event level: the droop-adjusted effective voltage the table
        // used, applied to every wire's own load.
        let droop = bus.droop().droop_fraction(matrix.bucket_activity(bucket));
        let v_eff = v.to_volts() * (1.0 - corner.ir.fraction() - droop);
        let arrivals: Vec<Picoseconds> = bus
            .per_wire_effective_caps(prev, cur)
            .iter()
            .map(|ceff| match ceff {
                Some(c) => bus.delay(*c, v_eff, corner.process, corner.temperature),
                None => Picoseconds::ZERO,
            })
            .collect();
        let outcome = bank.clock_cycle(cur, &arrivals);
        if outcome.error {
            event_errors += 1;
            let fixed = bank.recover();
            assert_eq!(fixed, cur, "recovery corrupted the word");
        }
        table_errors += u64::from(table_says_error);
        if outcome.error != table_says_error {
            disagreements += 1;
            // Disagreements may only come from loads right at the pass
            // limit (histogram quantization: 1 fF/mm).
            assert!(
                (analysis.worst_ceff_per_mm - limit).abs() < 1.5,
                "disagreement far from the threshold: load {} vs limit {limit}",
                analysis.worst_ceff_per_mm
            );
        }
        assert!(!outcome.shadow_violation, "silent corruption at {v}");
        prev = cur;
    }

    // The two engines agree except for quantization at the boundary.
    let max_slack = (table_errors.max(event_errors) / 50).max(20);
    assert!(
        disagreements <= max_slack,
        "{benchmark} at {v}: {disagreements} disagreements (event {event_errors}, table {table_errors})"
    );
}

#[test]
fn event_and_table_models_agree_at_typical_corner() {
    run_cross_check(
        PvtCorner::TYPICAL,
        Millivolts::new(940),
        Benchmark::Vortex,
        40_000,
    );
}

#[test]
fn event_and_table_models_agree_deep_in_the_error_region() {
    run_cross_check(
        PvtCorner::TYPICAL,
        Millivolts::new(900),
        Benchmark::Mgrid,
        40_000,
    );
}

#[test]
fn event_and_table_models_agree_at_worst_corner() {
    run_cross_check(
        PvtCorner::WORST,
        Millivolts::new(1_140),
        Benchmark::Crafty,
        40_000,
    );
}

#[test]
fn error_free_above_zero_error_point() {
    run_cross_check(
        PvtCorner::TYPICAL,
        Millivolts::new(1_200),
        Benchmark::Swim,
        20_000,
    );
}
