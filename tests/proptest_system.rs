//! System-level property tests spanning all crates.

use proptest::prelude::*;
use razorbus::core::{BusSimulator, DvsBusDesign, TraceSummary};
use razorbus::ctrl::{FixedVoltage, ThresholdController};
use razorbus::process::{IrDrop, ProcessCorner, PvtCorner};
use razorbus::traces::Benchmark;
use razorbus::units::{Celsius, Millivolts};

use std::sync::OnceLock;

fn design() -> &'static DvsBusDesign {
    static DESIGN: OnceLock<DvsBusDesign> = OnceLock::new();
    DESIGN.get_or_init(DvsBusDesign::paper_default)
}

fn benchmarks() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

fn corners() -> impl Strategy<Value = PvtCorner> {
    proptest::sample::select(PvtCorner::all_combinations())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Above the per-corner regulator floor, no trace at any grid voltage
    /// may corrupt the shadow latch — the soundness invariant of the
    /// whole scheme.
    #[test]
    fn shadow_latch_safe_above_floor(
        b in benchmarks(),
        seed in 0u64..1_000,
        steps_above in 0i32..4,
    ) {
        let d = design();
        // Tuning corner = worst temperature/IR for the true process.
        for process in ProcessCorner::ALL {
            let floor = d.regulator_floor(process);
            let v = (floor + Millivolts::new(20 * steps_above)).min(d.nominal());
            let corner = PvtCorner::new(process, Celsius::HOT, IrDrop::TenPercent);
            let mut trace = b.trace(seed);
            let s = TraceSummary::collect(d, &mut trace, 5_000);
            prop_assert_eq!(
                s.shadow_violation_cycles(d, corner, v),
                0,
                "{} corrupts shadow at {} ({:?})", b, v, process
            );
        }
    }

    /// Error rates are monotone non-increasing in supply voltage for any
    /// benchmark and any corner.
    #[test]
    fn error_rate_monotone_in_voltage(
        b in benchmarks(),
        corner in corners(),
        seed in 0u64..1_000,
    ) {
        let d = design();
        let mut trace = b.trace(seed);
        let s = TraceSummary::collect(d, &mut trace, 8_000);
        let rates: Vec<f64> = d.grid().iter()
            .map(|v| s.error_rate(d, corner, v))
            .collect();
        for w in rates.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    /// Energy is monotone increasing in voltage (recovery included) and
    /// the gain at nominal is exactly zero.
    #[test]
    fn energy_monotone_and_anchored(
        b in benchmarks(),
        corner in corners(),
        seed in 0u64..1_000,
    ) {
        let d = design();
        let mut trace = b.trace(seed);
        let s = TraceSummary::collect(d, &mut trace, 8_000);
        let energies: Vec<f64> = d.grid().iter()
            .map(|v| s.energy(d, corner, v, false).fj())
            .collect();
        for w in energies.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert!(s.energy_gain(d, corner, d.nominal()).abs() < 1e-9);
    }

    /// The closed-loop controller never leaves [floor, nominal], never
    /// corrupts the shadow latch, and its lifetime error rate stays far
    /// below the instantaneous band ceiling.
    #[test]
    fn closed_loop_invariants(
        b in benchmarks(),
        seed in 0u64..200,
    ) {
        let d = design();
        let corner = PvtCorner::TYPICAL;
        let floor = d.regulator_floor(corner.process);
        let ctrl = ThresholdController::new(d.controller_config(corner.process));
        let mut sim = BusSimulator::new(d, corner, b.trace(seed), ctrl).with_sampling(5_000);
        let r = sim.run(60_000);
        prop_assert_eq!(r.shadow_violations, 0);
        prop_assert!(r.min_voltage >= floor);
        prop_assert!(r.samples.iter().all(|s| s.voltage <= d.nominal()));
        prop_assert!(r.error_rate() < 0.06, "rate {}", r.error_rate());
        prop_assert!(r.energy_gain() >= -1e-9);
    }

    /// A fixed nominal-supply run is always error-free and gain-free,
    /// for every benchmark at every corner.
    #[test]
    fn nominal_supply_never_errors(
        b in benchmarks(),
        corner in corners(),
        seed in 0u64..1_000,
    ) {
        let d = design();
        let mut sim = BusSimulator::new(d, corner, b.trace(seed),
            FixedVoltage::new(d.nominal()));
        let r = sim.run(10_000);
        prop_assert_eq!(r.errors, 0);
        prop_assert!(r.energy_gain().abs() < 1e-9);
    }

    /// Histogram engine and streaming simulator agree exactly on error
    /// counts at any fixed grid voltage.
    #[test]
    fn summary_matches_simulator(
        b in benchmarks(),
        seed in 0u64..200,
        v_steps in 0i32..10,
    ) {
        let d = design();
        let corner = PvtCorner::TYPICAL;
        let v = Millivolts::new(1_200 - 20 * v_steps)
            .max(d.regulator_floor(corner.process));
        let mut sim = BusSimulator::new(d, corner, b.trace(seed), FixedVoltage::new(v));
        let r = sim.run(12_000);
        let mut trace = b.trace(seed);
        let s = TraceSummary::collect(d, &mut trace, 12_000);
        prop_assert_eq!(r.errors, s.error_cycles(d, corner, v));
    }

    /// Performance loss under the paper's 1-cycle-penalty model equals
    /// the error rate exactly.
    #[test]
    fn performance_model_identity(
        b in benchmarks(),
        seed in 0u64..200,
    ) {
        let d = design();
        let v = Millivolts::new(940);
        let mut sim = BusSimulator::new(d, PvtCorner::TYPICAL, b.trace(seed), FixedVoltage::new(v));
        let r = sim.run(10_000);
        prop_assert!((r.performance_loss() - r.error_rate()).abs() < 1e-15);
    }
}
